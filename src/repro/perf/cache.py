"""Cross-threshold marked-set caching for the Grover pipeline.

qMKP's binary search calls qTKP at O(log n) thresholds, and the only
part of the oracle that depends on the threshold ``T`` is the size
filter — k-cplex membership is a property of ``(graph, k)`` alone.  The
seed implementation nevertheless re-scanned all ``2^n`` masks through
the Python predicate at every probe.

This module computes the k-plex mask set **once** per ``(graph, k)``
(via :mod:`repro.perf.bitparallel`), partitions it by subset size, and
answers every threshold probe with a suffix lookup:

* :class:`MarkedSetTable` — the masks sorted by size with per-size
  offsets, so "all marked masks of size >= T" is an O(1) array slice
  and "how many" is a suffix-sum read;
* :class:`MarkedSetCache` — a small LRU over tables keyed on the
  graph's **structural fingerprint** and ``k``, shared across the
  probes of one qMKP run (and across runs, if the caller keeps the
  cache);
* :class:`PredicateMaskCache` — the same size partition for black-box
  subset predicates (``subset_search``), where the predicate itself
  cannot be vectorized but *can* be evaluated once instead of once per
  threshold.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

import numpy as np

from ..graphs import Graph
from ..obs import NULL_TRACER
from .bitparallel import (
    kplex_mask_status,
    kplex_masks,
    kplex_masks_containing,
    popcount_u64,
)

__all__ = ["MarkedSetTable", "MarkedSetCache", "PredicateMaskCache"]


def _masks_containing(num_vertices: int, u: int, v: int) -> np.ndarray:
    """All ``2^(n-2)`` subset bitmasks containing both ``u`` and ``v``,
    ascending.

    Scattering the free bits into increasing positions preserves order,
    so the result is ascending without a sort — the candidate set for
    an edge edit's re-evaluation (only subsets holding both endpoints
    can change k-plex status when the edge ``{u, v}`` flips).
    """
    rest = [b for b in range(num_vertices) if b not in (u, v)]
    base = np.arange(1 << len(rest), dtype=np.uint64)
    out = np.full(base.shape, (1 << u) | (1 << v), dtype=np.uint64)
    for i, b in enumerate(rest):
        out |= ((base >> np.uint64(i)) & np.uint64(1)) << np.uint64(b)
    return out


class MarkedSetTable:
    """Size-partitioned view of a marked-mask set.

    Parameters
    ----------
    num_vertices:
        Width of the mask space (sizes range over ``0..n``).
    masks, sizes:
        Parallel arrays: each mask with its popcount.  Order is
        preserved within a size class (stable sort), so tables built
    from ascending masks stay ascending inside each class.
    """

    def __init__(self, num_vertices: int, masks: np.ndarray, sizes: np.ndarray) -> None:
        if masks.shape != sizes.shape:
            raise ValueError("masks and sizes must be parallel arrays")
        self.num_vertices = num_vertices
        order = np.argsort(sizes, kind="stable")
        self._by_size = np.ascontiguousarray(masks[order])
        counts = np.bincount(sizes, minlength=num_vertices + 1).astype(np.int64)
        # _offsets[s] = index of the first mask with size >= s.
        self._offsets = np.concatenate(([0], np.cumsum(counts)))
        self._counts = counts

    @classmethod
    def from_partitions(
        cls, num_vertices: int, by_size: np.ndarray, offsets: np.ndarray
    ) -> "MarkedSetTable":
        """Rebuild a table from its serialized partition arrays verbatim.

        ``by_size`` and ``offsets`` are trusted to be a table's own
        ``_by_size`` / ``_offsets`` (size-partitioned masks plus the
        suffix index) — no re-sort happens, so a zero-copy view (e.g.
        an ``np.memmap`` over a shared segment) is served as-is and the
        result is byte-identical to the table that was serialized.
        """
        if offsets.shape != (num_vertices + 2,):
            raise ValueError(
                f"offsets must have {num_vertices + 2} entries, "
                f"got shape {offsets.shape}"
            )
        if int(offsets[-1]) != int(by_size.size):
            raise ValueError(
                f"offsets cover {int(offsets[-1])} masks but by_size has "
                f"{by_size.size}"
            )
        table = cls.__new__(cls)
        table.num_vertices = num_vertices
        table._by_size = by_size
        table._offsets = offsets
        table._counts = np.diff(offsets).astype(np.int64)
        return table

    @property
    def num_marked(self) -> int:
        """Total marked masks, irrespective of size."""
        return int(self._by_size.size)

    def size_histogram(self) -> np.ndarray:
        """Marked-mask count per subset size (index = size)."""
        return self._counts.copy()

    def _clip(self, threshold: int) -> int:
        return max(0, min(threshold, self.num_vertices + 1))

    def count_at_least(self, threshold: int) -> int:
        """Number of marked masks of size >= ``threshold`` (suffix sum)."""
        t = self._clip(threshold)
        if t > self.num_vertices:
            return 0
        return int(self._by_size.size - self._offsets[t])

    def masks_at_least(self, threshold: int) -> np.ndarray:
        """All marked masks of size >= ``threshold`` — a zero-copy slice."""
        t = self._clip(threshold)
        if t > self.num_vertices:
            return self._by_size[:0]
        return self._by_size[self._offsets[t]:]

    def max_marked_size(self) -> int:
        """Largest subset size with at least one marked mask (-1 if none)."""
        nonzero = np.nonzero(self._counts)[0]
        return int(nonzero[-1]) if nonzero.size else -1

    def ascending(self) -> tuple[np.ndarray, np.ndarray]:
        """``(masks, sizes)`` in ascending mask order.

        This is the sweep's native order (and the constructor's input
        order), recovered from the size partition; masks are unique, so
        a plain sort restores it exactly.
        """
        masks = np.sort(self._by_size).astype(np.int64)
        return masks, popcount_u64(masks)

    def retain(self, keep: np.ndarray) -> "MarkedSetTable":
        """New table holding only the ascending-order masks flagged in
        ``keep`` (a boolean array parallel to :meth:`ascending`)."""
        return self.patch(keep, np.empty(0, dtype=np.int64))

    def patch(
        self,
        keep: np.ndarray,
        add_masks: np.ndarray,
        num_vertices: int | None = None,
    ) -> "MarkedSetTable":
        """New table: ``keep``-filtered old masks merged with ``add_masks``.

        ``keep`` is boolean, parallel to :meth:`ascending`; ``add_masks``
        must be disjoint from the retained masks.  The result is
        byte-identical (``_by_size`` and ``_offsets`` alike) to a table
        built fresh from the union's ascending sweep — the invariant the
        incremental solver's bit-identity guarantee rests on.
        """
        keep = np.asarray(keep, dtype=bool)
        old_masks, _ = self.ascending()
        if keep.shape != old_masks.shape:
            raise ValueError(
                f"keep must be parallel to the {old_masks.size} marked "
                f"masks, got shape {keep.shape}"
            )
        merged = np.sort(np.concatenate([
            old_masks[keep],
            np.asarray(add_masks, dtype=np.int64),
        ])).astype(np.int64)
        n = self.num_vertices if num_vertices is None else num_vertices
        return MarkedSetTable(n, merged, popcount_u64(merged))


class MarkedSetCache:
    """LRU cache of :class:`MarkedSetTable` keyed on graph structure.

    One instance is typically created per qMKP run (the default) so the
    O(log n) threshold probes share a single bit-parallel sweep; a
    longer-lived instance additionally shares tables across runs on the
    same graph.

    Keys are ``(graph.fingerprint(), k)`` — an immutable structural
    digest, not the graph object.  Two consequences, both deliberate:
    a structurally identical graph built twice (or round-tripped
    through IO) hits the same table, and a graph whose internals are
    mutated after insertion recomputes instead of serving a stale
    marked set, because the fingerprint is re-derived from the live
    edge set at every lookup.  The cache also holds no reference to
    the graph, so it never extends graph lifetimes.

    Parameters
    ----------
    max_entries:
        Tables kept before least-recently-used eviction.
    chunk_masks, workers, kernel:
        Forwarded to :func:`repro.perf.bitparallel.kplex_masks`.
    tracer:
        Optional :class:`repro.obs.Tracer`; hit/miss accounting and the
        sweep span are recorded through it.  ``qmkp`` re-points this at
        its own tracer for the duration of a traced run, so a shared
        cache's activity lands in the right ledger.
    shared:
        Optional :class:`repro.perf.shared.SharedTableStore` backing
        tier, consulted between the in-process LRU and a cold sweep:
        a local miss first tries a zero-copy attach to a segment some
        other process published; a cold build (and every patch)
        publishes back so the rest of the fleet attaches instead of
        enumerating.  Shared activity is tracked by the
        ``shared_hits`` / ``shared_misses`` / ``shared_publishes``
        counters and charged to the tracer as ``cache_shared_*``.
    """

    def __init__(
        self,
        max_entries: int = 8,
        chunk_masks: int | None = None,
        workers: int | None = None,
        kernel: str | None = None,
        tracer=None,
        shared=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.chunk_masks = chunk_masks
        self.workers = workers
        self.kernel = kernel
        self.tracer = tracer or NULL_TRACER
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.patches = 0
        self.reused_partitions = 0
        self.shared_hits = 0
        self.shared_misses = 0
        self.shared_publishes = 0
        self._tables: OrderedDict[tuple[str, int], MarkedSetTable] = OrderedDict()

    def __len__(self) -> int:
        return len(self._tables)

    def _insert(self, key: tuple[str, int], table: MarkedSetTable) -> None:
        self._tables[key] = table
        while len(self._tables) > self.max_entries:
            self._tables.popitem(last=False)

    def _shared_attach(self, key: tuple[str, int], num_vertices: int):
        """Try the shared tier on a local miss; charges shared counters."""
        attached = self.shared.attach(key[0], key[1], num_vertices=num_vertices)
        if attached is not None:
            self.shared_hits += 1
            self.tracer.add("cache_shared_hits", 1)
            self._insert(key, attached)
        else:
            self.shared_misses += 1
            self.tracer.add("cache_shared_misses", 1)
        return attached

    def _shared_publish(self, key: tuple[str, int], table: MarkedSetTable) -> None:
        """Feed a freshly built (or patched) table back to the fleet."""
        if self.shared.publish(key[0], key[1], table, kernel=self.kernel):
            self.shared_publishes += 1
            self.tracer.add("cache_shared_publishes", 1)

    def table(self, graph: Graph, k: int) -> MarkedSetTable:
        """The k-plex mask table for ``(graph, k)``, computing it on miss.

        Lookup order: in-process LRU, then (when configured) a
        zero-copy attach to the shared store, then a cold bit-parallel
        sweep whose result is published back to the store.
        """
        key = (graph.fingerprint(), k)
        table = self._tables.get(key)
        if table is not None:
            self.hits += 1
            self.tracer.add("marked_cache_hits", 1)
            self._tables.move_to_end(key)
            return table
        self.misses += 1
        self.tracer.add("marked_cache_misses", 1)
        if self.shared is not None:
            attached = self._shared_attach(key, graph.num_vertices)
            if attached is not None:
                return attached
        with self.tracer.span("perf.sweep", n=graph.num_vertices, k=k) as span:
            masks, sizes = kplex_masks(
                graph, k, chunk_masks=self.chunk_masks, workers=self.workers,
                tracer=self.tracer, kernel=self.kernel,
            )
            span.set("num_marked", int(masks.size))
        table = MarkedSetTable(graph.num_vertices, masks, sizes)
        self._insert(key, table)
        if self.shared is not None:
            self._shared_publish(key, table)
        return table

    def marked(self, graph: Graph, k: int, threshold: int) -> np.ndarray:
        """Marked masks for one qTKP probe: k-plexes of size >= ``threshold``."""
        return self.table(graph, k).masks_at_least(threshold)

    def peek(self, graph: Graph, k: int, threshold: int) -> int | None:
        """Marked count at ``threshold`` if the table is already cached.

        Returns None when no table exists for ``(graph, k)`` — this
        never triggers a sweep and charges no hit/miss, so the adaptive
        threshold ladder can consult it for free before deciding whether
        a qTKP probe is worth dispatching (a zero suffix count proves
        the probe would come back empty-handed).  A peek-hit does bump
        the entry's LRU recency: the adaptive ladder's hottest table
        must not be evicted by unrelated ``table()`` inserts just
        because the ladder only ever peeked at it.
        """
        key = (graph.fingerprint(), k)
        table = self._tables.get(key)
        if table is None:
            return None
        self._tables.move_to_end(key)
        return table.count_at_least(threshold)

    def patch(
        self,
        old_graph: Graph,
        new_graph: Graph,
        k: int,
        op: str,
        u: int | None = None,
        v: int | None = None,
    ) -> MarkedSetTable | None:
        """Derive ``new_graph``'s table from ``old_graph``'s by a single edit.

        ``op`` names the mutation that turned ``old_graph`` into
        ``new_graph``: ``"add_edge"`` / ``"remove_edge"`` (endpoints
        ``u``, ``v``) or ``"add_vertex"`` (one isolated vertex appended).
        Only the masks the edit can affect are re-evaluated:

        * an edge edit touches exactly the ``2^(n-2)`` masks containing
          *both* endpoints — inserting an edge only relaxes the k-plex
          condition there (the marked set grows), deleting only tightens
          it (re-check the previously marked touched masks, nothing new
          can appear);
        * a vertex add leaves every old mask's status unchanged and
          evaluates the ``2^n`` masks containing the new vertex.

        The patched table is byte-identical to a fresh sweep of
        ``new_graph``.  Returns None (and charges nothing) when the old
        table is not cached — the next :meth:`table` call sweeps fresh.
        Masks carried over without re-evaluation are charged to the
        tracer as ``reused_partitions``.
        """
        if op not in ("add_edge", "remove_edge", "add_vertex"):
            raise ValueError(f"unknown patch op {op!r}")
        new_key = (new_graph.fingerprint(), k)
        existing = self._tables.get(new_key)
        if existing is not None:
            self._tables.move_to_end(new_key)
            return existing
        old_key = (old_graph.fingerprint(), k)
        old = self._tables.get(old_key)
        if old is None and self.shared is not None:
            # A sibling worker may have published the pre-edit table
            # (e.g. the same streaming session resumed on another
            # worker); attaching lets the patch proceed incrementally.
            old = self._shared_attach(old_key, old_graph.num_vertices)
        if old is None:
            return None
        n = new_graph.num_vertices
        old_masks, _ = old.ascending()
        pinned: tuple[int, ...] | None = None
        candidates = None
        if op == "add_vertex":
            if n != old.num_vertices + 1:
                raise ValueError(
                    f"add_vertex patch expects n to grow by 1, got "
                    f"{old.num_vertices} -> {n}"
                )
            # Masks without the new vertex keep their status verbatim;
            # masks with it sweep through the kernel-tiered subspace
            # enumerator (the contiguous top-bit half-space).
            keep = np.ones(old_masks.shape, dtype=bool)
            pinned = (n - 1,)
        else:
            if u is None or v is None or u == v:
                raise ValueError(f"{op} patch needs two distinct endpoints")
            both = np.uint64((1 << u) | (1 << v))
            touched = (old_masks.astype(np.uint64) & both) == both
            if op == "add_edge":
                # Touched masks can only gain membership: drop them from
                # the carry-over and re-sweep the ``2^(n-2)`` candidate
                # subspace through the kernel tiers.
                keep = ~touched
                pinned = (u, v)
            else:
                # Deletion can only lose membership: re-check just the
                # previously marked touched masks.
                keep = ~touched
                candidates = old_masks[touched].astype(np.uint64)
        num_candidates = (
            1 << (n - len(pinned)) if pinned is not None else int(candidates.size)
        )
        with self.tracer.span(
            "perf.patch", op=op, n=n, k=k, candidates=num_candidates
        ) as span:
            if pinned is not None:
                additions = kplex_masks_containing(
                    new_graph, k, *pinned, kernel=self.kernel
                )
            else:
                status = kplex_mask_status(new_graph, k, candidates)
                additions = candidates[status].astype(np.int64)
            table = old.patch(keep, additions, num_vertices=n)
            reused = int(keep.sum())
            span.set("num_marked", table.num_marked)
            span.set("reused", reused)
        self.patches += 1
        self.reused_partitions += reused
        self.tracer.add("marked_cache_patches", 1)
        self.tracer.add("reused_partitions", reused)
        self._insert(new_key, table)
        if self.shared is not None:
            # Republish so streaming sessions feed the fleet: a sibling
            # worker asked to solve the post-edit graph attaches instead
            # of sweeping.
            self._shared_publish(new_key, table)
        return table

    def patch_batch(
        self,
        old_graph: Graph,
        new_graph: Graph,
        k: int,
        edges: "list[tuple[int, int]]",
    ) -> MarkedSetTable | None:
        """Derive ``new_graph``'s table across a *batch* of edge insertions.

        ``edges`` lists the endpoint pairs inserted (in any order) to
        turn ``old_graph`` into ``new_graph``.  Instead of patching once
        per edit through every intermediate graph, the union of the
        pinned ``2^(n-2)`` subspaces is re-swept once against the final
        graph: masks containing no inserted pair keep their status
        verbatim (insertions only relax the k-plex condition elsewhere),
        and each pair's subspace is enumerated via
        :func:`kplex_masks_containing` on ``new_graph`` — deduplicated,
        because the subspaces overlap wherever a mask contains two
        inserted pairs.  The result is byte-identical to sequential
        :meth:`patch` calls (and to a fresh sweep); the whole batch
        charges **one** patch, with ``reused_partitions`` counting the
        masks outside the union subspace.

        Returns None when the old table is neither cached nor
        attachable — the next :meth:`table` call sweeps fresh.
        """
        pairs = []
        for u, v in edges:
            if u == v:
                raise ValueError(f"edge ({u}, {v}) has identical endpoints")
            pairs.append((min(u, v), max(u, v)))
        pairs = sorted(set(pairs))
        if not pairs:
            raise ValueError("patch_batch needs at least one inserted edge")
        new_key = (new_graph.fingerprint(), k)
        existing = self._tables.get(new_key)
        if existing is not None:
            self._tables.move_to_end(new_key)
            return existing
        old_key = (old_graph.fingerprint(), k)
        old = self._tables.get(old_key)
        if old is None and self.shared is not None:
            old = self._shared_attach(old_key, old_graph.num_vertices)
        if old is None:
            return None
        n = new_graph.num_vertices
        if n != old.num_vertices:
            raise ValueError(
                f"patch_batch is edge-only, but n changed "
                f"{old.num_vertices} -> {n}"
            )
        old_masks, _ = old.ascending()
        om = old_masks.astype(np.uint64)
        touched = np.zeros(om.shape, dtype=bool)
        for u, v in pairs:
            both = np.uint64((1 << u) | (1 << v))
            touched |= (om & both) == both
        keep = ~touched
        num_candidates = len(pairs) * (1 << max(n - 2, 0))
        with self.tracer.span(
            "perf.patch", op="add_edge_batch", n=n, k=k,
            edits=len(pairs), candidates=num_candidates,
        ) as span:
            parts = [
                kplex_masks_containing(new_graph, k, u, v, kernel=self.kernel)
                for u, v in pairs
            ]
            additions = np.unique(np.concatenate(parts)).astype(np.int64)
            table = old.patch(keep, additions, num_vertices=n)
            reused = int(keep.sum())
            span.set("num_marked", table.num_marked)
            span.set("reused", reused)
        self.patches += 1
        self.reused_partitions += reused
        self.tracer.add("marked_cache_patches", 1)
        self.tracer.add("reused_partitions", reused)
        self._insert(new_key, table)
        if self.shared is not None:
            self._shared_publish(new_key, table)
        return table

    def stats(self) -> dict[str, int]:
        """Hit/miss/patch/entry counters, for logging and tests.

        The ``shared_*`` keys appear only when a shared store is
        configured, so the no-shared stats dict is unchanged.
        """
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "patches": self.patches,
            "reused_partitions": self.reused_partitions,
            "entries": len(self._tables),
        }
        if self.shared is not None:
            out["shared_hits"] = self.shared_hits
            out["shared_misses"] = self.shared_misses
            out["shared_publishes"] = self.shared_publishes
        return out


class PredicateMaskCache:
    """Size-partitioned mask table for a black-box subset predicate.

    The generic :mod:`repro.core.subset_search` engine cannot vectorize
    an arbitrary predicate, but it can still stop paying the ``2^n``
    evaluation at *every* binary-search threshold: evaluate once here,
    then serve each probe from the size partition.
    """

    def __init__(self, graph: Graph, predicate: Callable[[frozenset[int]], bool]) -> None:
        n = graph.num_vertices
        marked = [
            mask
            for mask in range(1 << n)
            if predicate(graph.bitmask_to_subset(mask))
        ]
        masks = np.asarray(marked, dtype=np.int64)
        sizes = np.asarray([m.bit_count() for m in marked], dtype=np.int64)
        self._table = MarkedSetTable(n, masks, sizes)

    @property
    def table(self) -> MarkedSetTable:
        return self._table

    def marked(self, threshold: int) -> np.ndarray:
        """Masks whose subsets satisfy the predicate with size >= ``threshold``."""
        return self._table.masks_at_least(threshold)
