"""C-extension kernel tier: on-demand compiled ``_kernels.c`` via ctypes.

A "cython-style" compiled tier without build-time machinery: the C
source ships as package data, and the first resolution of the ``cext``
backend compiles it with the system C compiler into a per-source-digest
shared library under a user cache directory (atomic rename, so
concurrent processes — e.g. the enumerator's chunk workers — race
safely).  No ``Python.h``, no setuptools: the library is plain C driven
through ``ctypes``, which keeps the tier optional and the toolchain
requirement to "any cc".

Compilation uses ``-ffp-contract=off`` so the compiler cannot fuse
multiply-adds into FMAs — the float kernels replay the NumPy
reference's operation sequence and must round at every step exactly as
it does.  The lone reference divergence is ``exp``: libm's and NumPy's
vectorised ``exp`` can differ in the last ulp, which can flip a
Metropolis acceptance only when a uniform draw lands inside that
``2^-52``-wide gap (never observed in the equivalence suite's budget;
``delta <= 0`` short-circuits exactly, matching ``exp(0) == 1.0``).

Every load self-validates against the NumPy reference on a fixed probe
instance before the backend is offered; any mismatch raises
:class:`~repro.perf.kernels.KernelUnavailable` and the registry falls
back to NumPy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from .kernels import KernelBackend, KernelUnavailable

__all__ = ["CExtKernels", "shared_library_path"]

_SOURCE = Path(__file__).with_name("_kernels.c")

_U64 = ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
_I64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I8 = ndpointer(dtype=np.int8, flags="C_CONTIGUOUS")


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def shared_library_path() -> Path:
    """Where the compiled library for the current source lives (or will)."""
    cc = _compiler() or "none"
    digest = hashlib.sha256(
        _SOURCE.read_bytes() + cc.encode()
    ).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels-{digest}.so"


def _build_library() -> Path:
    cc = _compiler()
    if cc is None:
        raise KernelUnavailable("no C compiler on PATH")
    if not _SOURCE.exists():
        raise KernelUnavailable(f"kernel source missing: {_SOURCE}")
    out = shared_library_path()
    if out.exists():
        return out
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out.parent)
    os.close(fd)
    try:
        proc = subprocess.run(
            [
                cc, "-O3", "-fPIC", "-shared", "-ffp-contract=off",
                "-o", tmp, str(_SOURCE), "-lm",
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise KernelUnavailable(
                f"kernel compile failed ({cc}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, out)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out


def _load_library() -> ctypes.CDLL:
    lib = ctypes.CDLL(str(_build_library()))
    lib.enumerate_chunk.restype = ctypes.c_int64
    lib.enumerate_chunk.argtypes = [
        _U64, _I64, ctypes.c_int64,                     # adj, verts, nv
        ctypes.c_int64, ctypes.c_uint64, ctypes.c_uint64,  # limit, start, stop
        _U64, _I64,                                      # out_masks, out_sizes
    ]
    lib.sa_sweep_chunk.restype = ctypes.c_int64
    lib.sa_sweep_chunk.argtypes = [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # reads, start, end
        _I64, _I64, _F64,                                # sub csr
        _F64, _F64,                                      # h_c, rs_c
        _I64, _I64, _F64,                                # iptr, icols, ivals
        _F64, _F64, ctypes.c_double,                     # spins_t, uniforms, -beta
        _F64,                                            # fields scratch
    ]
    lib.sa_sweep_plan.restype = ctypes.c_int64
    lib.sa_sweep_plan.argtypes = [
        ctypes.c_int64, ctypes.c_int64,                  # reads, nchunks
        _I64,                                            # bounds
        _I64, _I64,                                      # ip_flat, ip_off
        _I64, _F64, _I64,                                # nz cols/vals/off
        _F64, _F64,                                      # h, rs
        _I64, _I64,                                      # sp_ptr_flat/off
        _I64, _F64, _I64,                                # sp cols/vals/off
        _F64, _F64, ctypes.c_double,                     # spins_t, uniforms, -beta
        _F64,                                            # fields scratch
    ]
    lib.tabu_descend.restype = None
    lib.tabu_descend.argtypes = [
        ctypes.c_int64, ctypes.c_int64,                  # R, n
        _I64, _I64, _F64, _F64,                          # csr, h
        _I8, _F64,                                       # x, energy
        ctypes.c_int64, ctypes.c_int64,                  # iterations, tenure
        ctypes.c_void_p,                                 # record (nullable)
        _I8, _F64,                                       # best_x, best_energy
        _F64, _I64,                                      # delta, tabu scratch
    ]
    return lib


class CExtKernels(KernelBackend):
    """The compiled-C tier (see module docstring)."""

    name = "cext"

    def __init__(self) -> None:
        self._lib = _load_library()
        from .selfcheck import validate_backend

        validate_backend(self)

    # ------------------------------------------------------------------
    def enumerate_chunk(self, adj_masks, limit, start, stop):
        # Pre-filter exactly like the reference: vertices whose full
        # complement degree cannot exceed the limit always pass.
        verts = [
            v for v, am in enumerate(adj_masks) if am.bit_count() > limit
        ]
        adj = np.asarray(
            [adj_masks[v] for v in verts], dtype=np.uint64
        )
        verts_arr = np.asarray(verts, dtype=np.int64)
        span = stop - start
        out_masks = np.empty(span, dtype=np.uint64)
        out_sizes = np.empty(span, dtype=np.int64)
        count = self._lib.enumerate_chunk(
            adj, verts_arr, len(verts), limit, start, stop, out_masks, out_sizes
        )
        return out_masks[:count].copy(), out_sizes[:count].copy()

    def sa_sweep(self, plan, spins_t, beta, uniforms):
        from .kernels import pack_sweep_plan

        reads = spins_t.shape[1]
        neg_beta = -float(beta)
        spins_t = np.ascontiguousarray(spins_t)
        uniforms = np.ascontiguousarray(uniforms)
        pack = pack_sweep_plan(plan)
        if pack is not None:
            # One native call per sweep: the packing is memoized on the
            # plan, so repeat sweeps pay only this dispatch.
            scratch = np.empty(pack.max_chunk * reads, dtype=np.float64)
            return int(
                self._lib.sa_sweep_plan(
                    reads, pack.nchunks, pack.bounds,
                    pack.ip_flat, pack.ip_off,
                    pack.nz_cols, pack.nz_vals, pack.nz_off,
                    pack.h, pack.rs,
                    pack.sp_ptr_flat, pack.sp_ptr_off,
                    pack.sp_cols, pack.sp_vals, pack.sp_nz_off,
                    spins_t, uniforms, neg_beta, scratch,
                )
            )
        # Irregular (hand-built) plan: per-chunk dispatch.
        max_chunk = max((end - start for start, end, *_ in plan), default=0)
        scratch = np.empty(max_chunk * reads, dtype=np.float64)
        flips = 0
        for (
            start, end, _jc, sub_indptr, sub_indices, sub_data,
            h_c, rs_c, iptr, icols, ivals,
        ) in plan:
            flips += self._lib.sa_sweep_chunk(
                reads, start, end,
                np.ascontiguousarray(sub_indptr, dtype=np.int64),
                np.ascontiguousarray(sub_indices, dtype=np.int64),
                np.ascontiguousarray(sub_data, dtype=np.float64),
                h_c, rs_c,
                np.asarray(iptr, dtype=np.int64),
                np.ascontiguousarray(icols, dtype=np.int64),
                np.ascontiguousarray(ivals, dtype=np.float64),
                spins_t, uniforms, neg_beta, scratch,
            )
        return int(flips)

    def tabu_descend(
        self, h, indptr, indices, data, x, energies, iterations, tenure,
        record_flips=None,
    ):
        num_restarts, n = x.shape
        energy = np.asarray(energies, dtype=np.float64)
        best_energy = energy.copy()
        best_x = x.copy()
        delta = np.empty((num_restarts, n), dtype=np.float64)
        tabu_until = np.empty((num_restarts, n), dtype=np.int64)
        record = (
            np.zeros((max(iterations, 1), num_restarts), dtype=np.int64)
            if record_flips is not None
            else None
        )
        self._lib.tabu_descend(
            num_restarts, n,
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(data, dtype=np.float64),
            np.ascontiguousarray(h, dtype=np.float64),
            x, energy, iterations, tenure,
            None if record is None else record.ctypes.data_as(ctypes.c_void_p),
            best_x, best_energy, delta, tabu_until,
        )
        if record_flips is not None:
            record_flips.extend(record[step].copy() for step in range(iterations))
        return best_x, best_energy
