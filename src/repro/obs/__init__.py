"""Observability: span tracing, metrics, and the zero-drift run ledger.

Substrate layer (like ``repro.graphs``): imported by every stack above
it, imports nothing inside ``repro`` itself.  Three pieces:

* :mod:`repro.obs.tracer` — nested spans with additive metric
  contributions and claims; ``NULL_TRACER`` is the near-zero-overhead
  default everywhere, so tracing is strictly opt-in;
* :mod:`repro.obs.metrics` — a process-local counter/gauge/histogram
  registry exportable as JSON or Prometheus text;
* :mod:`repro.obs.ledger` — the run ledger assembled from a tracer,
  whose ``verify()`` reconciles span totals against the numbers the
  result objects report and fails loudly on any drift.
"""

from .ledger import DriftRecord, LedgerDriftError, RunLedger
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DriftRecord",
    "Gauge",
    "Histogram",
    "LedgerDriftError",
    "MetricRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "Span",
    "Tracer",
]
