"""The run ledger: one JSON document, zero drift.

A :class:`RunLedger` is assembled from a :class:`~repro.obs.tracer.Tracer`
after a run.  It contains the span tree, the metric registry snapshot,
and the aggregate totals — and, crucially, :meth:`RunLedger.verify`,
which recomputes every **claim** (a total asserted by the instrumented
code's own result objects: ``QMKPResult.oracle_calls``,
``QTKPResult.gate_units``, ``ResilienceReport`` attempt counts,
``MarkedSetCache.stats()`` deltas) from the span tree's additive
contributions and fails loudly on any mismatch.

Integral quantities must reconcile **bit-for-bit**; float quantities
(budget microseconds) within 1e-9 relative tolerance, since their
reference values are built by a different summation order.  The ledger
also cross-checks the registry: every counter must equal the span
tree's total for that name (contributions recorded outside any span are
kept as ``orphan_metrics`` and included), so a stray
``registry.counter(...).inc()`` that bypasses ``tracer.add`` is caught
too.

Turning the tracer on therefore *is* an accounting audit: any future
change that makes a result object and the observed execution disagree
breaks ``verify()`` in tests and CI instead of silently shipping wrong
numbers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from .metrics import MetricRegistry
from .tracer import Span, Tracer

__all__ = ["DriftRecord", "LedgerDriftError", "RunLedger"]

SCHEMA = "repro.obs/run-ledger/v1"

#: Tolerance for float-valued claims (see module docstring).
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


@dataclass(frozen=True)
class DriftRecord:
    """One reconciliation failure."""

    where: str       # span path, e.g. "qmkp/qtkp[2]", or "registry"
    metric: str
    claimed: float   # what the result object / claim asserted
    observed: float  # what the span tree actually accumulated

    def __str__(self) -> str:
        return (
            f"{self.where}: {self.metric} claimed={self.claimed!r} "
            f"observed={self.observed!r} (drift={self.observed - self.claimed!r})"
        )


class LedgerDriftError(RuntimeError):
    """Raised by :meth:`RunLedger.verify` when any claim fails to reconcile."""

    def __init__(self, drift: list[DriftRecord]) -> None:
        self.drift = drift
        lines = "\n  ".join(str(d) for d in drift)
        super().__init__(
            f"run ledger failed to reconcile ({len(drift)} drift record(s)):\n  {lines}"
        )


def _values_match(claimed: float, observed: float) -> bool:
    cf, of = float(claimed), float(observed)
    if cf.is_integer() and of.is_integer():
        return cf == of
    return math.isclose(cf, of, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


class RunLedger:
    """Span tree + metrics + totals, reconciled into one document."""

    def __init__(
        self,
        roots: list[Span],
        registry: MetricRegistry | None = None,
        orphan_metrics: dict[str, float] | None = None,
        meta: dict[str, object] | None = None,
    ) -> None:
        self.roots = list(roots)
        self.registry = registry if registry is not None else MetricRegistry()
        self.orphan_metrics = dict(orphan_metrics or {})
        self.meta = dict(meta or {})

    @classmethod
    def from_tracer(
        cls, tracer: Tracer, meta: dict[str, object] | None = None
    ) -> "RunLedger":
        return cls(
            roots=tracer.roots,
            registry=tracer.registry,
            orphan_metrics=tracer.orphan_metrics,
            meta=meta,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def metric_names(self) -> set[str]:
        names = set(self.orphan_metrics)
        for root in self.roots:
            names |= root.metric_names()
        return names

    def total(self, metric: str) -> float:
        """Whole-document total for ``metric`` (all roots + orphans)."""
        total = self.orphan_metrics.get(metric, 0)
        for root in self.roots:
            total += root.subtree_total(metric)
        return total

    def totals(self) -> dict[str, float]:
        return {name: self.total(name) for name in sorted(self.metric_names())}

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across the roots, pre-order."""
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, raise_on_drift: bool = True) -> list[DriftRecord]:
        """Reconcile every claim and the registry; return drift records.

        With ``raise_on_drift`` (the default) a non-empty result raises
        :class:`LedgerDriftError` instead — "fails loudly" is the whole
        point of the ledger.
        """
        drift: list[DriftRecord] = []
        for root in self.roots:
            self._verify_span(root, root.name, drift)
        self._verify_registry(drift)
        if drift and raise_on_drift:
            raise LedgerDriftError(drift)
        return drift

    def _verify_span(self, span: Span, path: str, drift: list[DriftRecord]) -> None:
        for metric, claimed in span.claims.items():
            observed = span.subtree_total(metric)
            if not _values_match(claimed, observed):
                drift.append(DriftRecord(path, metric, claimed, observed))
        counts: dict[str, int] = {}
        for child in span.children:
            counts[child.name] = counts.get(child.name, 0) + 1
            seq = counts[child.name] - 1
            self._verify_span(child, f"{path}/{child.name}[{seq}]", drift)

    def _verify_registry(self, drift: list[DriftRecord]) -> None:
        """Every registry counter must equal the span-tree total."""
        tree_names = self.metric_names()
        for name, value in self.registry.counters().items():
            observed = self.total(name) if name in tree_names else 0
            if not _values_match(value, observed):
                drift.append(DriftRecord("registry", name, value, observed))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        drift = self.verify(raise_on_drift=False)
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "verified": not drift,
            "drift": [
                {
                    "where": d.where,
                    "metric": d.metric,
                    "claimed": d.claimed,
                    "observed": d.observed,
                }
                for d in drift
            ],
            "totals": self.totals(),
            "orphan_metrics": dict(self.orphan_metrics),
            "metrics": self.registry.as_dict(),
            "spans": [root.as_dict() for root in self.roots],
        }

    def to_json(self, path: str | Path) -> Path:
        """Write the ledger document; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path
