"""Context-manager span tracer with a zero-overhead off switch.

Spans form a tree: qMKP's root span contains one ``qtkp`` span per
binary-search probe, each of which contains one ``qtkp.attempt`` span
per measure/verify round; the annealing stack nests resilience rungs
and attempts the same way.  A span carries three kinds of data:

* **attributes** (``span.set``) — descriptive context (``k``, the
  threshold, the backend name).  Never aggregated.
* **metric contributions** (``span.add``) — additive quantities charged
  *at this span* (oracle calls, gate units, retry counts).  Subtree
  sums of these are the ledger's totals, and every ``add`` also
  increments the same-named counter in the tracer's
  :class:`~repro.obs.metrics.MetricRegistry`.
* **claims** (``span.claim``) — what the instrumented code's *own
  result object* says the subtree total should be
  (``QMKPResult.oracle_calls``, ``ResilienceReport`` attempt counts,
  cache hit/miss deltas).  :meth:`repro.obs.ledger.RunLedger.verify`
  recomputes each claimed subtree sum from the contributions and fails
  loudly on any mismatch — the tracer double-checks the accounting it
  observes against the accounting the code reports.

``NULL_TRACER`` is the default everywhere: a singleton whose ``span``
returns a reusable no-op context manager, so un-traced runs pay one
attribute lookup and one cheap call per instrumentation site (measured
well under the 2 % bench-smoke overhead budget).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import MetricRegistry

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]


@dataclass
class Span:
    """One node of the span tree (see module docstring for the fields)."""

    name: str
    index: int
    attributes: dict[str, object] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    claims: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    start_s: float = 0.0
    duration_s: float | None = None

    # -- recording API (mirrored by the null tracer as no-ops) ----------
    def set(self, key: str, value: object) -> None:
        """Attach a descriptive attribute."""
        self.attributes[key] = value

    def add(self, metric: str, amount: float = 1) -> None:
        """Charge an additive metric contribution at this span.

        Note: called through :meth:`Tracer.add` / directly; the tracer
        keeps the registry counter in sync, so prefer ``tracer.add`` in
        instrumented code.
        """
        self.metrics[metric] = self.metrics.get(metric, 0) + amount

    def claim(self, metric: str, total: float) -> None:
        """Assert the subtree total of ``metric`` (checked by the ledger)."""
        self.claims[metric] = total

    # -- aggregation ----------------------------------------------------
    def subtree_total(self, metric: str) -> float:
        """Sum of ``metric`` contributions over this span and descendants."""
        total = self.metrics.get(metric, 0)
        for child in self.children:
            total += child.subtree_total(metric)
        return total

    def metric_names(self) -> set[str]:
        names = set(self.metrics)
        for child in self.children:
            names |= child.metric_names()
        return names

    def walk(self):
        """Pre-order iteration over the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in pre-order (None if absent)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"name": self.name, "index": self.index}
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if self.claims:
            out["claims"] = dict(self.claims)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class Tracer:
    """Recording tracer: builds the span tree and feeds the registry.

    One tracer instance captures one run.  Multiple top-level ``span``
    calls are allowed (each becomes a root); the ledger wraps them under
    a synthetic document root.
    """

    is_recording = True

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_index = 0
        #: Contributions recorded with no span open (kept, not lost —
        #: they surface in the ledger so the drift check sees them).
        self.orphan_metrics: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span (None outside any ``span`` block)."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open a child span of the current span (or a new root)."""
        span = Span(name=name, index=self._next_index, start_s=time.perf_counter())
        self._next_index += 1
        if attributes:
            span.attributes.update(attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - span.start_s
            self._stack.pop()

    def add(self, metric: str, amount: float = 1) -> None:
        """Charge ``amount`` to the current span and the registry counter."""
        span = self.current
        if span is not None:
            span.add(metric, amount)
        else:
            self.orphan_metrics[metric] = (
                self.orphan_metrics.get(metric, 0) + amount
            )
        self.registry.counter(metric).inc(amount)

    def set(self, key: str, value: object) -> None:
        """Attribute on the current span (dropped if no span is open)."""
        span = self.current
        if span is not None:
            span.set(key, value)

    def observe(self, metric: str, value: float) -> None:
        """Record a histogram observation (distribution, not additive)."""
        self.registry.histogram(metric).observe(value)


class _NullSpan:
    """Inert stand-in handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, key, value):
        pass

    def add(self, metric, amount=1):
        pass

    def claim(self, metric, total):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class NullTracer:
    """The off switch: every operation is a near-free no-op.

    ``span`` is *not* a ``@contextmanager`` — it returns a pre-built
    inert object directly, avoiding a generator frame per call.
    """

    __slots__ = ()

    is_recording = False
    registry = None
    _SPAN = _NullSpan()

    def span(self, name, **attributes):
        return self._SPAN

    def add(self, metric, amount=1):
        pass

    def set(self, key, value):
        pass

    def observe(self, metric, value):
        pass


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the idiom at every
#: instrumented entry point.
NULL_TRACER = NullTracer()
