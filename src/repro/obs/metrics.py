"""Process-local metric registry: counters, gauges, histograms.

The observability layer's second leg (the first is the span tracer in
:mod:`repro.obs.tracer`).  A :class:`MetricRegistry` is a plain,
process-local name -> instrument map with no background threads, no
global state, and no export dependencies; callers read it out as a JSON
document (:meth:`MetricRegistry.as_dict`) or as Prometheus text
exposition (:meth:`MetricRegistry.render_prometheus`).

Metric names follow the ``subsystem_quantity`` convention used across
the run ledger (``oracle_calls``, ``gate_units``, ``marked_cache_hits``,
``resilience_attempts``, ``perf_chunks_scanned``, ...) so a ledger's
span totals and the registry's counters describe the same quantities
under the same names.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: Default histogram bucket upper bounds (``+inf`` is implicit).
_DEFAULT_BUCKETS = (0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
                    2.5, 5.0, 10.0, 100.0, 1_000.0, 10_000.0)


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without the ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max.

    Buckets are upper bounds (``le`` semantics, Prometheus style); the
    implicit ``+inf`` bucket catches everything.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be ascending, got {bounds}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float | None:
        return self.total / self.count if self.count else None


class MetricRegistry:
    """Name -> instrument map; one per traced run (or per process).

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    instrumented code never has to pre-register anything.  Asking for an
    existing name with a different instrument kind is an error — that is
    always an accounting bug, never a feature.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get(self, name: str, kind: type, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, help, buckets))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, float]:
        """All counter values by name (the slice the ledger reconciles)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot of every instrument."""
        out: dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Counter):
                out["counters"][name] = m.value
            elif isinstance(m, Gauge):
                out["gauges"][name] = m.value
            else:
                out["histograms"][name] = {
                    "count": m.count,
                    "sum": m.total,
                    "min": None if m.count == 0 else m.min,
                    "max": None if m.count == 0 else m.max,
                    "buckets": {
                        _format_value(b): c
                        for b, c in zip(m.buckets, m.bucket_counts)
                    } | {"+Inf": m.bucket_counts[-1]},
                }
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (one block per metric)."""
        lines: list[str] = []
        for name, m in sorted(self._metrics.items()):
            full = prefix + name
            if m.help:
                lines.append(f"# HELP {full} {m.help}")
            if isinstance(m, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full}_total {_format_value(m.value)}")
            elif isinstance(m, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full} {_format_value(m.value)}")
            else:
                lines.append(f"# TYPE {full} histogram")
                cumulative = 0
                for bound, count in zip(m.buckets, m.bucket_counts):
                    cumulative += count
                    lines.append(
                        f'{full}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                    )
                lines.append(f'{full}_bucket{{le="+Inf"}} {m.count}')
                lines.append(f"{full}_sum {_format_value(m.total)}")
                lines.append(f"{full}_count {m.count}")
        return "\n".join(lines) + ("\n" if lines else "")
