"""Grover iteration schedules and success probabilities.

Closed-form facts about amplitude amplification used across the gate
algorithms and the analysis layer:

* optimal iteration count ``floor(pi/4 * sqrt(N / M))`` (Algorithm 1
  line 4 of the paper);
* exact success probability ``sin^2((2i + 1) * theta)`` with
  ``sin^2 theta = M / N``;
* the paper's error bound ``pi^2 / (4 I)^2`` after ``I`` iterations.
"""

from __future__ import annotations

import math

__all__ = [
    "optimal_iterations",
    "best_iterations",
    "success_probability",
    "error_probability",
    "paper_error_bound",
]


def optimal_iterations(num_states: int, num_marked: int) -> int:
    """``floor(pi/4 * sqrt(N/M))``, the canonical Grover schedule.

    Returns 0 when more than half the states are marked (a single
    measurement of the uniform superposition already succeeds with
    probability > 1/2 and further rotation would overshoot).
    """
    if num_states <= 0:
        raise ValueError(f"num_states must be positive, got {num_states}")
    if not (0 < num_marked <= num_states):
        raise ValueError(
            f"num_marked must be in [1, {num_states}], got {num_marked}"
        )
    return int(math.floor(math.pi / 4.0 * math.sqrt(num_states / num_marked)))


def best_iterations(num_states: int, num_marked: int) -> int:
    """The iteration count maximising the success probability.

    The canonical ``floor(pi/4 * sqrt(N/M))`` schedule can *overshoot*
    when ``M`` is a large fraction of ``N`` (e.g. M slightly above N/2
    rotates past the target and measures worse than the uniform state).
    With ``M`` known, scanning the handful of candidate counts around
    the canonical one and keeping the argmax is free and strictly
    better; qTKP uses this schedule.
    """
    canonical = optimal_iterations(num_states, num_marked)
    best, best_p = 0, success_probability(num_states, num_marked, 0)
    for i in range(1, canonical + 2):
        p = success_probability(num_states, num_marked, i)
        if p > best_p:
            best, best_p = i, p
    return best


def success_probability(num_states: int, num_marked: int, iterations: int) -> float:
    """Probability of measuring a marked state after ``iterations`` steps."""
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    if num_marked == 0:
        return 0.0
    theta = math.asin(math.sqrt(num_marked / num_states))
    return math.sin((2 * iterations + 1) * theta) ** 2


def error_probability(num_states: int, num_marked: int, iterations: int) -> float:
    """``1 - success_probability`` — the exact failure chance."""
    return 1.0 - success_probability(num_states, num_marked, iterations)


def paper_error_bound(iterations: int) -> float:
    """The paper's quoted bound ``pi^2 / (4 I)^2`` on the error probability.

    Only meaningful for ``I >= 1``; at the optimal iteration count it
    upper-bounds the true error for M << N.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    return (math.pi ** 2) / (4.0 * iterations) ** 2
