"""Grover search engine: schedules, diffusion, and exact simulation."""

from .diffusion import diffusion_circuit, diffusion_gate_count, diffusion_matrix
from .iterations import (
    best_iterations,
    error_probability,
    optimal_iterations,
    paper_error_bound,
    success_probability,
)
from .simulator import GroverRun, PhaseOracleGrover, grover_circuit
from .unknown_m import BBHTResult, bbht_search

__all__ = [
    "BBHTResult",
    "GroverRun",
    "bbht_search",
    "best_iterations",
    "PhaseOracleGrover",
    "diffusion_circuit",
    "diffusion_gate_count",
    "diffusion_matrix",
    "error_probability",
    "grover_circuit",
    "optimal_iterations",
    "paper_error_bound",
    "success_probability",
]
