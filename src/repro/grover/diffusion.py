"""The Grover diffusion operator as an explicit circuit.

``U_diff = H^n (2|0><0| - I) H^n`` — inversion about the mean.  The
standard realisation flips the phase of |0...0> via X / multi-controlled
Z / X sandwiched in Hadamards.  The gate algorithms charge this circuit
to their per-iteration gate budget, and small-n tests check it against
the matrix ``2|s><s| - I``.
"""

from __future__ import annotations

import numpy as np

from ..quantum import QuantumCircuit

__all__ = ["diffusion_circuit", "diffusion_matrix", "diffusion_gate_count"]


def diffusion_circuit(num_qubits: int) -> QuantumCircuit:
    """Build the diffusion operator on ``num_qubits`` search qubits.

    Note the global phase: this circuit implements
    ``-(2|s><s| - I)``, the usual hardware form; the sign is
    unobservable and cancels in Grover's iteration.
    """
    if num_qubits < 1:
        raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
    qc = QuantumCircuit(num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    for q in range(num_qubits):
        qc.x(q)
    if num_qubits == 1:
        qc.z(0)
    else:
        qc.mcz(list(range(num_qubits - 1)), num_qubits - 1)
    for q in range(num_qubits):
        qc.x(q)
    for q in range(num_qubits):
        qc.h(q)
    return qc


def diffusion_matrix(num_qubits: int) -> np.ndarray:
    """The ideal operator ``2|s><s| - I`` as a dense matrix."""
    dim = 1 << num_qubits
    s = np.full((dim, 1), 1.0 / np.sqrt(dim))
    return 2.0 * (s @ s.T) - np.eye(dim)


def diffusion_gate_count(num_qubits: int) -> int:
    """Gates per diffusion application (4n + 1)."""
    return 4 * num_qubits + 1
