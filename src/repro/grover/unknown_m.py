"""Grover search with an unknown number of solutions (BBHT).

qTKP needs the solution count ``M`` to fix its iteration schedule; the
paper obtains it from quantum counting.  The classic alternative is the
exponential schedule of Boyer, Brassard, Hoyer & Tapp (1998), which
needs no count at all: repeatedly pick a random iteration count below a
growing ceiling, run, measure, verify.  The expected oracle cost stays
``O(sqrt(N / M))`` even though ``M`` is never learned.

The driver below runs against :class:`repro.grover.PhaseOracleGrover`
(so the measurement statistics are exact) while only using ``M`` the
way hardware would: through measurement outcomes and classical
verification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simulator import PhaseOracleGrover

__all__ = ["BBHTResult", "bbht_search"]

#: The ceiling growth factor; BBHT prove any 1 < c < 4/3 works.
_GROWTH = 1.25


@dataclass(frozen=True)
class BBHTResult:
    """Outcome of one BBHT run.

    Attributes
    ----------
    mask:
        The measured solution basis state, or ``None`` on failure.
    found:
        Whether a verified solution was measured.
    oracle_calls:
        Total Grover iterations executed across all rounds.
    rounds:
        Number of run/measure/verify rounds.
    """

    mask: int | None
    found: bool
    oracle_calls: int
    rounds: int


def bbht_search(
    engine: PhaseOracleGrover,
    rng: np.random.Generator | None = None,
    max_oracle_calls: int | None = None,
) -> BBHTResult:
    """Search without knowing ``M`` via the BBHT exponential schedule.

    Parameters
    ----------
    engine:
        A prepared phase-oracle Grover engine (its marked set plays the
        role of the hardware oracle; this driver never reads
        ``engine.num_marked``).
    max_oracle_calls:
        Abort threshold; defaults to ``4 * ceil(sqrt(N))`` plus slack,
        after which the instance is declared unsolvable (the correct
        verdict when ``M = 0``, reached with certainty).
    """
    rng = rng or np.random.default_rng()
    n_states = 1 << engine.num_qubits
    if max_oracle_calls is None:
        max_oracle_calls = int(6 * np.ceil(np.sqrt(n_states))) + 12
    ceiling = 1.0
    sqrt_n = float(np.sqrt(n_states))
    oracle_calls = 0
    rounds = 0
    # Rounds are bounded too: zero-iteration draws cost no oracle calls
    # but each round still measures, and an M = 0 instance must halt.
    max_rounds = 4 * max(max_oracle_calls, 1)
    while oracle_calls < max_oracle_calls and rounds < max_rounds:
        rounds += 1
        iterations = int(rng.integers(0, int(np.ceil(ceiling))))
        run = engine.run(iterations)
        oracle_calls += iterations
        mask = run.measure_once(rng)
        if mask in engine.marked:
            return BBHTResult(mask, True, oracle_calls, rounds)
        ceiling = min(_GROWTH * ceiling, sqrt_n)
    return BBHTResult(None, False, oracle_calls, rounds)
