"""Grover search with an unknown number of solutions (BBHT).

qTKP needs the solution count ``M`` to fix its iteration schedule; the
paper obtains it from quantum counting.  The classic alternative is the
exponential schedule of Boyer, Brassard, Hoyer & Tapp (1998), which
needs no count at all: repeatedly pick a random iteration count below a
growing ceiling, run, measure, verify.  The expected oracle cost stays
``O(sqrt(N / M))`` even though ``M`` is never learned.

The driver below runs against :class:`repro.grover.PhaseOracleGrover`
(so the measurement statistics are exact) while only using ``M`` the
way hardware would: through measurement outcomes and classical
verification.

For noisy executions the driver takes two hooks rather than importing
the resilience layer (arrows point down): ``execute`` replaces the
engine call (so :class:`repro.resilience.GateFaultInjector` can raise
transient faults and dampen success probabilities) and ``corrupt``
post-processes each measured mask (readout bit-flips).  When noise can
defeat a whole schedule, ``restarts`` re-runs the exponential schedule
from a fresh ceiling before the instance is declared unsolvable — each
restart is recorded as a ``gate.retry`` span for the run ledger.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .simulator import GroverRun, PhaseOracleGrover

__all__ = ["BBHTResult", "bbht_search"]

#: The ceiling growth factor; BBHT prove any 1 < c < 4/3 works.
_GROWTH = 1.25


@dataclass(frozen=True)
class BBHTResult:
    """Outcome of one BBHT run.

    Attributes
    ----------
    mask:
        The measured solution basis state, or ``None`` on failure.
    found:
        Whether a verified solution was measured.
    oracle_calls:
        Total Grover iterations executed across all rounds and restarts.
    rounds:
        Number of run/measure/verify rounds.
    restarts_used:
        Schedule restarts consumed (0 = first schedule succeeded or no
        restart budget was given).
    rejected:
        Measured candidates the verification step refused — unlucky
        collapses and injected readout corruption alike.
    final_ceiling:
        The exponential schedule's ceiling when the search stopped.
        Feeding it back as ``initial_ceiling`` lets a caller running a
        *sequence* of related searches (qMKP's adaptive threshold
        ladder) resume the schedule where the last search left it
        instead of re-growing from 1.
    """

    mask: int | None
    found: bool
    oracle_calls: int
    rounds: int
    restarts_used: int = 0
    rejected: int = 0
    final_ceiling: float = 1.0


def bbht_search(
    engine: PhaseOracleGrover,
    rng: np.random.Generator | int | None = None,
    max_oracle_calls: int | None = None,
    restarts: int = 0,
    execute: Callable[[PhaseOracleGrover, int], GroverRun] | None = None,
    corrupt: Callable[[int], int] | None = None,
    tracer=None,
    initial_ceiling: float = 1.0,
    observe: Callable[[int], None] | None = None,
) -> BBHTResult:
    """Search without knowing ``M`` via the BBHT exponential schedule.

    Parameters
    ----------
    engine:
        A prepared phase-oracle Grover engine (its marked set plays the
        role of the hardware oracle; this driver never reads
        ``engine.num_marked``).
    max_oracle_calls:
        Per-schedule abort threshold; defaults to ``4 * ceil(sqrt(N))``
        plus slack, after which the schedule is exhausted (the correct
        verdict when ``M = 0``, reached with certainty).
    restarts:
        How many times an exhausted schedule may restart from a fresh
        ceiling before the instance is declared unsolvable.  Noiseless
        schedules only exhaust when ``M = 0``, so the default is 0;
        fault-injected runs pass a budget here.
    execute:
        Replacement for ``engine.run`` (fault injection hook); must
        return a :class:`~repro.grover.simulator.GroverRun`.
    corrupt:
        Post-measurement hook applied to each measured mask.
    tracer:
        Optional :class:`repro.obs.Tracer`; each restart opens a
        ``gate.retry`` span (kind ``"bbht_restart"``).
    initial_ceiling:
        Starting ceiling for the first schedule (default 1 = the
        classic cold start).  Restarted schedules still begin fresh at
        1 — a restart exists to escape a ceiling that noise defeated.
    observe:
        Called with every measured (post-``corrupt``) mask, found or
        rejected, before the marked-set check.  The adaptive ladder's
        incumbent tracker lives here: rejected masks can still encode
        feasible solutions below the current threshold.
    """
    rng = np.random.default_rng(rng)
    run_engine = execute if execute is not None else (
        lambda eng, iterations: eng.run(iterations)
    )
    n_states = 1 << engine.num_qubits
    if max_oracle_calls is None:
        max_oracle_calls = int(6 * np.ceil(np.sqrt(n_states))) + 12
    sqrt_n = float(np.sqrt(n_states))
    oracle_calls = 0
    rounds = 0
    rejected = 0
    # Rounds are bounded too: zero-iteration draws cost no oracle calls
    # but each round still measures, and an M = 0 instance must halt.
    max_rounds = 4 * max(max_oracle_calls, 1)
    ceiling = 1.0
    for schedule in range(restarts + 1):
        ceiling = (
            min(max(float(initial_ceiling), 1.0), sqrt_n) if schedule == 0 else 1.0
        )
        schedule_calls = 0
        schedule_rounds = 0
        while schedule_calls < max_oracle_calls and schedule_rounds < max_rounds:
            rounds += 1
            schedule_rounds += 1
            iterations = int(rng.integers(0, int(np.ceil(ceiling))))
            run = run_engine(engine, iterations)
            oracle_calls += iterations
            schedule_calls += iterations
            mask = run.measure_once(rng)
            if corrupt is not None:
                mask = corrupt(mask)
            if observe is not None:
                observe(mask)
            if mask in engine.marked:
                return BBHTResult(
                    mask, True, oracle_calls, rounds, schedule, rejected,
                    final_ceiling=ceiling,
                )
            rejected += 1
            ceiling = min(_GROWTH * ceiling, sqrt_n)
        if schedule < restarts and tracer is not None:
            with tracer.span(
                "gate.retry", kind="bbht_restart", restart=schedule + 1
            ):
                tracer.add("gate_retries", 1)
    return BBHTResult(
        None, False, oracle_calls, rounds, restarts, rejected,
        final_ceiling=ceiling,
    )
