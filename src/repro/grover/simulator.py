"""Grover search simulation on the vertex register.

Two execution backends share one interface:

* :class:`PhaseOracleGrover` — the workhorse.  Because the oracle's
  ``U_check / sign-flip / U_check^dag`` sandwich returns every ancilla
  to |0>, its net effect on the ``n`` vertex qubits is exactly a phase
  flip on marked basis states.  This backend therefore keeps only the
  ``2^n`` vertex-register amplitudes, applies the sign flips from a
  marked-state set, and performs the diffusion reflection analytically.
  The amplitudes are bit-for-bit those of a full-width simulation (the
  ancilla register factors out as |0...0>), which the test suite
  verifies against dense simulation on small instances.

* :func:`grover_circuit` — the literal Fig. 11 circuit (state
  preparation, oracle placeholder, diffusion), dense-simulable for
  small ``n``, used for validation and for gate accounting.

The simulator records the amplitude trace after every iteration — the
data behind the paper's Fig. 12 bar charts.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import numpy as np

from ..quantum import QuantumCircuit
from .diffusion import diffusion_circuit
from .iterations import optimal_iterations, success_probability

__all__ = ["GroverRun", "PhaseOracleGrover", "grover_circuit"]


@dataclass
class GroverRun:
    """Everything produced by one Grover execution.

    Attributes
    ----------
    num_qubits, marked:
        The search-space size and marked set.
    iterations:
        Number of oracle+diffusion rounds applied.
    amplitudes:
        Final real amplitude vector over the ``2^n`` basis states.
    history:
        ``history[i]`` is the success probability after ``i``
        iterations (entry 0 is the uniform superposition).
    amplitude_snapshots:
        Amplitude vectors recorded after requested iterations
        (``{iteration: vector}``), for Fig. 12-style plots.
    depolarization:
        Accumulated depolarizing weight (0 = noiseless).  With weight
        ``d`` the measurement distribution is ``(1-d) * |amp|^2 + d/N``
        — the register's state after a depolarizing channel — so the
        success probability is dampened toward ``M/N`` exactly as NISQ
        noise dampens it.
    """

    num_qubits: int
    marked: frozenset[int]
    iterations: int
    amplitudes: np.ndarray
    history: list[float] = field(default_factory=list)
    amplitude_snapshots: dict[int, np.ndarray] = field(default_factory=dict)
    depolarization: float = 0.0

    #: Lazily computed normalized measurement distribution; qTKP's
    #: retry loop measures the same run repeatedly, so the ``amp**2`` /
    #: normalization pass is paid once, not per attempt.
    _probabilities: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def success_probability(self) -> float:
        """Probability that measurement yields a marked state."""
        if not self.marked:
            return 0.0
        idx = np.fromiter(self.marked, dtype=np.int64)
        clean = float(np.sum(self.amplitudes[idx] ** 2))
        if not self.depolarization:
            return clean
        uniform = len(self.marked) / (1 << self.num_qubits)
        return (1.0 - self.depolarization) * clean + self.depolarization * uniform

    @property
    def error_probability(self) -> float:
        return 1.0 - self.success_probability

    def probabilities(self) -> np.ndarray:
        """The normalized measurement distribution (memoized)."""
        if self._probabilities is None:
            probs = self.amplitudes ** 2
            probs = probs / probs.sum()
            if self.depolarization:
                probs = (
                    (1.0 - self.depolarization) * probs
                    + self.depolarization / probs.size
                )
            self._probabilities = probs
        return self._probabilities

    def measure(self, shots: int, rng: np.random.Generator | None = None) -> dict[int, int]:
        """Sample ``shots`` measurements; returns basis index -> count."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        draws = rng.choice(len(probs), size=shots, p=probs)
        values, counts = np.unique(draws, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def measure_once(self, rng: np.random.Generator | None = None) -> int:
        """A single measurement outcome."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        return int(rng.choice(len(probs), p=probs))


class PhaseOracleGrover:
    """Exact Grover simulation given a marked-state oracle.

    Parameters
    ----------
    num_qubits:
        Search register width ``n`` (``2^n`` basis states).
    oracle:
        One of three oracle forms:

        * a predicate ``mask -> bool``, evaluated over all ``2^n``
          masks up front (the slow, always-available form);
        * an iterable of marked basis indices;
        * a NumPy integer array of marked indices — the fast path for
          precomputed marked sets (:mod:`repro.perf`), which skips the
          per-element Python conversion of the iterable form.

        All three forms with the same marked set produce bit-identical
        runs.
    """

    #: refuse absurd widths (2^26 floats ~ 0.5 GB)
    MAX_QUBITS = 26

    def __init__(
        self,
        num_qubits: int,
        oracle: Iterable[int] | Callable[[int], bool] | np.ndarray,
    ) -> None:
        if not (1 <= num_qubits <= self.MAX_QUBITS):
            raise ValueError(
                f"num_qubits must be in [1, {self.MAX_QUBITS}], got {num_qubits}"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if isinstance(oracle, np.ndarray):
            if oracle.size and not np.issubdtype(oracle.dtype, np.integer):
                raise ValueError(
                    f"marked array must have an integer dtype, got {oracle.dtype}"
                )
            arr = np.unique(oracle.astype(np.int64))
            if arr.size and (int(arr[0]) < 0 or int(arr[-1]) >= dim):
                raise ValueError("marked index out of range")
            marked = arr.tolist()
        elif callable(oracle):
            marked = [i for i in range(dim) if oracle(i)]
        else:
            marked = sorted(set(int(i) for i in oracle))
            if marked and (marked[0] < 0 or marked[-1] >= dim):
                raise ValueError("marked index out of range")
        self.marked = frozenset(marked)
        self._marked_array = np.fromiter(self.marked, dtype=np.int64) if marked else None

    @property
    def num_marked(self) -> int:
        return len(self.marked)

    def optimal_iterations(self) -> int:
        """Canonical iteration count for this instance (0 if M = 0)."""
        if not self.marked:
            return 0
        return optimal_iterations(1 << self.num_qubits, len(self.marked))

    def run(
        self,
        iterations: int | None = None,
        snapshot_at: Iterable[int] = (),
        depolarize: float = 0.0,
    ) -> GroverRun:
        """Execute Grover for ``iterations`` rounds (optimal if None).

        ``depolarize`` is a per-iteration depolarizing rate: each round
        leaves the register untouched with probability ``1 - p`` and
        scrambles it to the maximally mixed state with probability
        ``p``.  The accumulated weight ``1 - (1-p)^iterations`` lands
        on :attr:`GroverRun.depolarization` and dampens the measurement
        distribution; the amplitude trace itself (the noiseless branch)
        is unchanged, so ``depolarize=0.0`` is byte-identical to the
        noiseless path.
        """
        if iterations is None:
            iterations = self.optimal_iterations()
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if not 0.0 <= depolarize < 1.0:
            raise ValueError(f"depolarize must be in [0, 1), got {depolarize}")
        dim = 1 << self.num_qubits
        amp = np.full(dim, 1.0 / np.sqrt(dim))
        snapshots = {int(i) for i in snapshot_at}
        run = GroverRun(self.num_qubits, self.marked, iterations, amp)
        if depolarize:
            run.depolarization = 1.0 - (1.0 - depolarize) ** iterations
        if 0 in snapshots:
            run.amplitude_snapshots[0] = amp.copy()
        run.history.append(self._success(amp))
        for i in range(1, iterations + 1):
            if self._marked_array is not None:
                amp[self._marked_array] *= -1.0       # oracle sign flip
            amp = 2.0 * amp.mean() - amp              # inversion about mean
            run.history.append(self._success(amp))
            if i in snapshots:
                run.amplitude_snapshots[i] = amp.copy()
        run.amplitudes = amp
        return run

    def theoretical_success(self, iterations: int) -> float:
        """Closed-form ``sin^2((2i+1) theta)`` for cross-checking."""
        return success_probability(1 << self.num_qubits, len(self.marked), iterations)

    def _success(self, amp: np.ndarray) -> float:
        if self._marked_array is None:
            return 0.0
        return float(np.sum(amp[self._marked_array] ** 2))


def grover_circuit(num_qubits: int, oracle_circuit: QuantumCircuit, iterations: int) -> QuantumCircuit:
    """The literal Fig. 11 layout: H^n then ``iterations`` (oracle, diffusion).

    ``oracle_circuit`` must act as a phase oracle on the first
    ``num_qubits`` qubits (any ancillas must be returned to |0>); it is
    inlined verbatim each round.  Intended for small-n validation and
    gate counting, not production search.
    """
    qc = QuantumCircuit(oracle_circuit.num_qubits)
    qc.mirror_registers(oracle_circuit)
    for q in range(num_qubits):
        qc.h(q)
    diff = diffusion_circuit(num_qubits)
    for _ in range(iterations):
        qc.extend(oracle_circuit)
        qc.extend(diff)
    return qc
