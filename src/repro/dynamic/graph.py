"""Mutable graph editing layer over the immutable :class:`Graph`.

Every other layer of the library treats :class:`repro.graphs.Graph` as
immutable — memo guards, cache keys, and oracle constructions all rely
on it.  :class:`DynamicGraph` is the mutation boundary for streaming
workloads: it owns a plain edge set that edits change in place, keeps
an append-only journal of every mutation, and exposes the current
structure only through :meth:`snapshot`, which builds a **structurally
fresh** :class:`Graph` per version.

"Structurally fresh" is a deliberate contract, not an implementation
detail: each snapshot is constructed from scratch, so its identity-keyed
memo slots (``_fingerprint_cache``, ``_complement_cache``) can never
carry state across mutations, and older snapshots stay valid forever —
a solver holding the step-3 graph is unaffected by edits applied for
step 4.  Rebinding internals of a live ``Graph`` (the failure mode
``tests/graphs/test_graph_caches.py`` guards against) never happens
here because no ``Graph`` built by this class is ever touched again.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs import Graph
from .edits import Edit

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """An editable graph with an edit journal and fresh snapshots.

    Parameters
    ----------
    graph_or_n:
        Either a :class:`Graph` to start from (copied, never aliased)
        or a vertex count.
    edges:
        Initial edges when ``graph_or_n`` is a count.
    """

    def __init__(
        self,
        graph_or_n: Graph | int,
        edges: Iterable[tuple[int, int]] = (),
    ) -> None:
        if isinstance(graph_or_n, Graph):
            base = graph_or_n
        else:
            base = Graph(graph_or_n, edges)
        self._n = base.num_vertices
        self._edge_set: set[tuple[int, int]] = set(base.edges)
        self.journal: list[Edit] = []
        self._version = 0
        self._snapshot: tuple[int, Graph] | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    @property
    def version(self) -> int:
        """Monotone mutation counter (== ``len(self.journal)``)."""
        return self._version

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return (min(u, v), max(u, v)) in self._edge_set

    def snapshot(self) -> Graph:
        """The current structure as a brand-new immutable :class:`Graph`.

        Memoized per version: repeated calls between mutations return
        the same object (so fingerprint/complement memos amortise), and
        the first call after any mutation builds a fresh ``Graph`` —
        never rebinding internals of a previously returned one.
        """
        cached = self._snapshot
        if cached is not None and cached[0] == self._version:
            return cached[1]
        graph = Graph(self._n, self._edge_set)
        self._snapshot = (self._version, graph)
        return graph

    def fingerprint(self) -> str:
        """Structural digest of the current version (see :meth:`Graph.fingerprint`)."""
        return self.snapshot().fingerprint()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _check_endpoints(self, u: int, v: int) -> tuple[int, int]:
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        for w in (u, v):
            if not (0 <= w < self._n):
                raise ValueError(f"vertex {w} out of range for {self._n} vertices")
        return (u, v) if u < v else (v, u)

    def add_edge(self, u: int, v: int) -> Edit:
        """Insert the edge ``{u, v}`` (must be absent)."""
        edge = self._check_endpoints(u, v)
        if edge in self._edge_set:
            raise ValueError(f"edge {edge} already present")
        self._edge_set.add(edge)
        return self._record(Edit("add_edge", *edge))

    def remove_edge(self, u: int, v: int) -> Edit:
        """Delete the edge ``{u, v}`` (must be present)."""
        edge = self._check_endpoints(u, v)
        if edge not in self._edge_set:
            raise ValueError(f"edge {edge} not present")
        self._edge_set.discard(edge)
        return self._record(Edit("remove_edge", *edge))

    def add_vertex(self) -> int:
        """Append one isolated vertex; returns its (internal) id."""
        new_id = self._n
        self._n += 1
        self._record(Edit("add_vertex"))
        return new_id

    def apply(self, edit: Edit) -> Edit:
        """Apply one :class:`Edit` (internal-id space) and journal it."""
        if edit.op == "add_edge":
            return self.add_edge(edit.u, edit.v)
        if edit.op == "remove_edge":
            return self.remove_edge(edit.u, edit.v)
        self.add_vertex()
        return self.journal[-1]

    def _record(self, edit: Edit) -> Edit:
        self.journal.append(edit)
        self._version += 1
        return edit

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._n}, m={self.num_edges}, "
            f"version={self._version})"
        )
