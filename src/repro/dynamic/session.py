"""Incremental re-solve sessions over a mutating graph.

An :class:`IncrementalSolver` owns a :class:`~repro.dynamic.DynamicGraph`
and re-solves the maximum k-plex after each batch of mutations, reusing
work from the previous step through up to three channels:

1. **Marked-set patching** (qMKP only) — instead of re-sweeping all
   ``2^n`` masks, the previous step's :class:`~repro.perf.MarkedSetTable`
   is patched through each edit (:meth:`~repro.perf.MarkedSetCache.patch`):
   a single-edge edit re-evaluates only the ``2^(n-2)`` masks containing
   both endpoints.  The patched table is byte-identical to a fresh
   sweep, so with the default ``profile="exact"`` every step's result is
   **byte-identical** to a cold solve of the post-edit graph with the
   same per-step seed — the property the ``tests/dynamic`` suite and the
   CI ``dynamic-smoke`` job pin.

2. **Incumbent carry-over** (``profile="warm"``) — the previous optimum
   is re-verified against the new graph (shrunk vertex-by-vertex if an
   edge deletion broke it; dropping one endpoint per deleted edge always
   restores feasibility) and seeds qMKP's ladder lower bound or the
   branch search's initial incumbent.  Same optimum *size*,
   deterministic per seed, but not byte-identical: the threshold
   sequence changes.

3. **Annealing warm starts** (``solver="qamkp-sa"``, ``profile="warm"``)
   — the carried incumbent becomes every SA read's initial state via
   the QUBO's closed-form optimal slack completion.

Each :meth:`IncrementalSolver.resolve` opens one ``dynamic.step`` span
and *claims* its reuse on it (``reused_partitions``,
``warm_start_hits``), so :meth:`repro.obs.RunLedger.verify` proves the
advertised reuse actually happened — reuse accounting that drifts from
the patch spans' recorded totals fails the ledger, not just a test.

Mutations are journalled when they arrive but the cache is patched
lazily inside ``resolve()``'s span: patching at mutation time would
record the reuse as span-less orphan metrics and break the step's claim
reconciliation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.qamkp import QAMKPResult, qamkp
from ..core.qmkp import QMKPResult, qmkp
from ..graphs import Graph
from ..kplex import BranchSearchResult, is_kplex, maximum_kplex
from ..obs import NULL_TRACER, RunLedger
from ..perf import MarkedSetCache
from ..resilience.checkpoint import CheckpointError
from .edits import Edit
from .graph import DynamicGraph

__all__ = ["IncrementalSolver", "StepResult", "surviving_kplex"]

SOLVERS = ("qmkp", "bs", "qamkp-sa")
PROFILES = ("exact", "warm")


def surviving_kplex(
    graph: Graph, subset: frozenset[int], k: int
) -> frozenset[int] | None:
    """The previous optimum adapted to the mutated graph, best effort.

    Returns ``subset`` itself if it is still a k-plex of ``graph``;
    otherwise greedily drops the most-deficient member (most
    non-neighbours inside the candidate, smallest id on ties) until the
    remainder verifies.  Deleting one edge breaks the k-plex property by
    at most one unit at each endpoint, so one drop per deleted edge
    always suffices — the loop is a fixpoint, not a search.  Returns
    None when nothing survives (or the input was empty).
    """
    candidate = set(subset)
    candidate = {v for v in candidate if v < graph.num_vertices}
    while candidate:
        if is_kplex(graph, frozenset(candidate), k):
            return frozenset(candidate)
        size = len(candidate)
        worst = max(
            candidate,
            key=lambda v: (size - 1 - graph.degree_in(v, candidate), -v),
        )
        candidate.discard(worst)
    return None


@dataclass(frozen=True)
class StepResult:
    """One resolved step of an incremental session."""

    step: int
    edits: tuple[Edit, ...]
    fingerprint: str
    subset: frozenset[int]
    solver: str
    profile: str
    reused_partitions: int = 0
    warm_start_hits: int = 0
    resumed_probes: int = 0
    result: object = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.subset)


class IncrementalSolver:
    """A re-solve session over a stream of graph mutations.

    Parameters
    ----------
    graph:
        The initial structure — a :class:`Graph` (wrapped) or a
        :class:`DynamicGraph` (adopted; its journal keeps growing).
    k:
        The k-plex parameter, fixed for the session.
    solver:
        ``"qmkp"`` (Grover pipeline, all three reuse channels),
        ``"bs"`` (classical branch search, incumbent channel only), or
        ``"qamkp-sa"`` (simulated annealing, warm-sampleset channel).
    profile:
        ``"exact"`` (default) uses only byte-identity-preserving reuse:
        every step equals a cold solve bit for bit.  ``"warm"`` adds the
        incumbent / sampleset channels — same optimum size, not
        byte-identical.
    seed:
        Session seed.  Step ``i`` solves with
        ``np.random.default_rng([seed, i])`` (qMKP) or an integer
        derived from the same ``SeedSequence`` (SA), so any step can be
        reproduced cold without replaying the stream.
    counting, ladder, runtime_us, kernel:
        Forwarded to the underlying solver (qMKP's counting/ladder,
        SA's budget, the sweep/anneal kernel backend).
    cache:
        The session's :class:`~repro.perf.MarkedSetCache` (qMKP only);
        created with room for patched tables when omitted.
    tracer:
        Optional :class:`repro.obs.Tracer`; each resolve contributes a
        ``dynamic.step`` span whose claims :meth:`ledger` can verify.
    checkpoint_dir:
        When set (qMKP only), each step journals its probes into
        ``step{N:04d}.wal`` under this directory and ``resolve`` resumes
        a half-finished step bit-identically after a crash.
    """

    def __init__(
        self,
        graph: Graph | DynamicGraph,
        k: int,
        solver: str = "qmkp",
        profile: str = "exact",
        seed: int = 0,
        counting: str = "exact",
        ladder: str = "binary",
        runtime_us: float = 1000.0,
        kernel: str | None = None,
        cache: MarkedSetCache | None = None,
        tracer=None,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        if profile not in PROFILES:
            raise ValueError(
                f"profile must be one of {PROFILES}, got {profile!r}"
            )
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        )
        self.k = k
        self.solver = solver
        self.profile = profile
        self.seed = seed
        self.counting = counting
        self.ladder = ladder
        self.runtime_us = runtime_us
        self.kernel = kernel
        # ``cache or ...`` would discard a caller-provided *empty* cache
        # (``MarkedSetCache.__len__`` makes it falsy) — e.g. the service
        # runner's fleet-shared cache before its first table build.
        self.cache = cache if cache is not None else MarkedSetCache(kernel=kernel)
        self.tracer = tracer or NULL_TRACER
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.history: list[StepResult] = []
        self._pending: list[tuple[Graph, Edit, Graph]] = []
        self._incumbent: frozenset[int] | None = None

    # ------------------------------------------------------------------
    # Mutations (journalled now, reconciled inside resolve()'s span)
    # ------------------------------------------------------------------
    def _record(self, mutate) -> Edit:
        before = self.graph.snapshot()
        out = mutate()
        edit = self.graph.journal[-1]
        self._pending.append((before, edit, self.graph.snapshot()))
        return out if isinstance(out, Edit) else edit

    def add_edge(self, u: int, v: int) -> Edit:
        return self._record(lambda: self.graph.add_edge(u, v))

    def remove_edge(self, u: int, v: int) -> Edit:
        return self._record(lambda: self.graph.remove_edge(u, v))

    def add_vertex(self) -> int:
        before = self.graph.snapshot()
        new_id = self.graph.add_vertex()
        self._pending.append(
            (before, self.graph.journal[-1], self.graph.snapshot())
        )
        return new_id

    def apply(self, edit: Edit) -> Edit:
        return self._record(lambda: self.graph.apply(edit))

    def apply_edits(self, edits) -> list[Edit]:
        return [self.apply(edit) for edit in edits]

    @property
    def pending_edits(self) -> tuple[Edit, ...]:
        """Mutations applied since the last :meth:`resolve`."""
        return tuple(edit for _, edit, _ in self._pending)

    @property
    def next_step(self) -> int:
        return len(self.history)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def step_rng(self, step: int) -> np.random.Generator:
        """The deterministic per-step generator: ``default_rng([seed, step])``.

        This is the session's reproducibility contract — a cold solve of
        the post-edit graph with this generator must match the
        incremental step byte for byte under ``profile="exact"``.
        """
        return np.random.default_rng([self.seed, step])

    def step_sa_seed(self, step: int) -> int:
        """Per-step integer seed for the SA sampler, same seed tree."""
        return int(np.random.SeedSequence([self.seed, step]).generate_state(1)[0])

    def resolve(self) -> StepResult:
        """Solve the current graph, reusing the previous step's work."""
        step = self.next_step
        pending = self._pending
        edits = tuple(edit for _, edit, _ in pending)
        working = self.graph.snapshot()
        with self.tracer.span(
            "dynamic.step",
            step=step,
            edits=len(edits),
            n=working.num_vertices,
            k=self.k,
            solver=self.solver,
            profile=self.profile,
        ) as span:
            reused = self._patch_pending(pending) if self.solver == "qmkp" else 0
            warm = self._warm_seed(working)
            result, subset, resumed, warm_hits = self._solve(
                working, step, warm
            )
            span.set("size", len(subset))
            span.set("fingerprint", working.fingerprint())
            if resumed:
                span.set("resumed_probes", resumed)
            span.claim("reused_partitions", reused)
            span.claim("warm_start_hits", warm_hits)
        step_result = StepResult(
            step=step,
            edits=edits,
            fingerprint=working.fingerprint(),
            subset=subset,
            solver=self.solver,
            profile=self.profile,
            reused_partitions=reused,
            warm_start_hits=warm_hits,
            resumed_probes=resumed,
            result=result,
        )
        self.history.append(step_result)
        self._incumbent = subset
        self._pending = []
        return step_result

    def ledger(self) -> RunLedger:
        """The session's reconciled run ledger (see :meth:`RunLedger.verify`)."""
        return RunLedger.from_tracer(self.tracer)

    # -- internals -------------------------------------------------------
    def _patch_pending(self, pending) -> int:
        """Patch the marked-set table through each journalled edit.

        Runs inside the ``dynamic.step`` span with the cache's tracer
        re-pointed at the session's, so the ``perf.patch`` spans (and
        their ``reused_partitions`` contributions) land under the step.
        Returns the number of masks carried over without re-evaluation.
        """
        if not pending:
            return 0
        prev_tracer = self.cache.tracer
        self.cache.tracer = self.tracer
        before = self.cache.stats()["reused_partitions"]
        try:
            if len(pending) >= 2 and all(
                edit.op == "add_edge" for _, edit, _ in pending
            ):
                # Batch fusion: one re-sweep of the union pinned
                # subspace against the final graph, byte-identical to
                # patching through every intermediate snapshot.
                self.cache.patch_batch(
                    pending[0][0],
                    pending[-1][2],
                    self.k,
                    [(edit.u, edit.v) for _, edit, _ in pending],
                )
            else:
                for old_graph, edit, new_graph in pending:
                    u = edit.u if edit.op != "add_vertex" else None
                    v = edit.v if edit.op != "add_vertex" else None
                    self.cache.patch(old_graph, new_graph, self.k, edit.op, u, v)
        finally:
            self.cache.tracer = prev_tracer
        return self.cache.stats()["reused_partitions"] - before

    def _warm_seed(self, working: Graph) -> frozenset[int] | None:
        if self.profile != "warm" or self._incumbent is None:
            return None
        warm = surviving_kplex(working, self._incumbent, self.k)
        return warm if warm else None

    def _solve(self, working, step, warm):
        if self.solver == "qmkp":
            result = self._solve_qmkp(working, step, warm)
            return result, result.subset, result.resumed_probes, int(
                warm is not None
            )
        if self.solver == "bs":
            result: BranchSearchResult = maximum_kplex(
                working, self.k, initial_incumbent=warm
            )
            if warm is not None:
                self.tracer.add("warm_start_hits", 1)
            return result, result.subset, 0, int(warm is not None)
        result: QAMKPResult = qamkp(
            working,
            self.k,
            solver="sa",
            runtime_us=self.runtime_us,
            seed=self.step_sa_seed(step),
            warm=warm,
            kernel=self.kernel,
            tracer=self.tracer,
        )
        return result, result.repaired, 0, int(warm is not None)

    def _solve_qmkp(self, working, step, warm) -> QMKPResult:
        kwargs: dict[str, object] = {}
        path = None
        if self.checkpoint_dir is not None:
            path = self.checkpoint_dir / f"step{step:04d}.wal"
            kwargs["checkpoint"] = path
            if path.exists():
                kwargs["resume"] = path
        try:
            return qmkp(
                working, self.k, counting=self.counting,
                rng=self.step_rng(step), cache=self.cache,
                ladder=self.ladder, warm=warm, tracer=self.tracer, **kwargs,
            )
        except CheckpointError:
            # A stale or corrupt step journal (e.g. the stream's edits
            # changed under a persisted workdir): discard it and solve
            # the step fresh — never resume against the wrong instance.
            if path is None or "resume" not in kwargs:
                raise
            path.unlink(missing_ok=True)
            kwargs.pop("resume")
            return qmkp(
                working, self.k, counting=self.counting,
                rng=self.step_rng(step), cache=self.cache,
                ladder=self.ladder, warm=warm, tracer=self.tracer, **kwargs,
            )
