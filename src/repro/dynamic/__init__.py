"""Dynamic graphs and incremental re-solving.

Streaming layer above ``repro.core``: a mutable
:class:`~repro.dynamic.DynamicGraph` journals edge/vertex edits, and an
:class:`~repro.dynamic.IncrementalSolver` session re-solves the maximum
k-plex after each mutation batch, patching the marked-set tables and
(optionally) carrying incumbents/samplesets across steps instead of
starting cold.  See :mod:`repro.dynamic.session` for the reuse channels
and their identity guarantees.
"""

from .edits import (
    EDIT_OPS,
    Edit,
    apply_labelled_edit,
    format_edits,
    parse_edits,
    read_edits,
)
from .graph import DynamicGraph
from .session import IncrementalSolver, StepResult, surviving_kplex

__all__ = [
    "EDIT_OPS",
    "DynamicGraph",
    "Edit",
    "IncrementalSolver",
    "StepResult",
    "apply_labelled_edit",
    "format_edits",
    "parse_edits",
    "read_edits",
    "surviving_kplex",
]
