"""Edit records and the edit-script text format.

An :class:`Edit` is one graph mutation — edge insert, edge delete, or
vertex add.  :class:`~repro.dynamic.DynamicGraph` journals every
mutation as one, and the streaming entry points (``qmkp watch``, the
service's ``edits_path`` jobs, the dynamic smoke/bench harnesses) read
mutation streams from *edit scripts*, a line-oriented text format in
the spirit of the edge-list files:

* blank lines and lines starting with ``#`` or ``%`` are ignored;
* ``add U V`` inserts the edge ``{U, V}``;
* ``del U V`` deletes the edge ``{U, V}``;
* ``addv``  adds one isolated vertex (optionally ``addv LABEL`` to
  name it for files whose vertices carry arbitrary integer labels).

Vertex fields hold whatever id space the surrounding context uses: the
CLI parses scripts in the graph file's *label* space and translates to
internal ids; the library-level harnesses use internal ids directly.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Edit",
    "apply_labelled_edit",
    "format_edits",
    "parse_edits",
    "read_edits",
]

#: The mutation kinds a :class:`DynamicGraph` supports.
EDIT_OPS = ("add_edge", "remove_edge", "add_vertex")


@dataclass(frozen=True)
class Edit:
    """One graph mutation.

    ``op`` is one of :data:`EDIT_OPS`.  Edge ops carry both endpoints;
    ``add_vertex`` carries an optional label in ``u`` (None = let the
    applier pick) and ignores ``v``.
    """

    op: str
    u: int | None = None
    v: int | None = None

    def __post_init__(self) -> None:
        if self.op not in EDIT_OPS:
            raise ValueError(f"unknown edit op {self.op!r}; expected {EDIT_OPS}")
        if self.op != "add_vertex":
            if self.u is None or self.v is None:
                raise ValueError(f"{self.op} needs two endpoints")
            if self.u == self.v:
                raise ValueError(f"{self.op} endpoints must differ, got {self.u}")

    def as_line(self) -> str:
        """The edit's canonical script line."""
        if self.op == "add_edge":
            return f"add {self.u} {self.v}"
        if self.op == "remove_edge":
            return f"del {self.u} {self.v}"
        return "addv" if self.u is None else f"addv {self.u}"


def format_edits(edits: list[Edit]) -> str:
    """Render edits as script text (one line each, trailing newline)."""
    return "".join(edit.as_line() + "\n" for edit in edits)


def parse_edits(text: str) -> list[Edit]:
    """Parse edit-script text; see the module docstring for the format."""
    edits: list[Edit] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in "#%":
            continue
        parts = stripped.split()
        word = parts[0].lower()
        try:
            if word in ("add", "del") and len(parts) == 3:
                op = "add_edge" if word == "add" else "remove_edge"
                edits.append(Edit(op, int(parts[1]), int(parts[2])))
            elif word == "addv" and len(parts) in (1, 2):
                label = int(parts[1]) if len(parts) == 2 else None
                edits.append(Edit("add_vertex", label))
            else:
                raise ValueError("expected 'add U V', 'del U V', or 'addv [LABEL]'")
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {stripped!r}: {exc}") from None
    return edits


def read_edits(path: str | Path) -> list[Edit]:
    """Read an edit-script file; see :func:`parse_edits`."""
    return parse_edits(Path(path).read_text())


def apply_labelled_edit(target, edit: Edit, labels: dict[int, object]) -> Edit:
    """Apply a *label-space* edit to a graph/session, maintaining ``labels``.

    ``target`` is anything with the mutation API (``add_vertex`` /
    ``apply``) — a :class:`~repro.dynamic.DynamicGraph` or an
    :class:`~repro.dynamic.IncrementalSolver`.  ``labels`` is the
    ``{internal_id: file_label}`` map from
    :func:`repro.graphs.read_edge_list`; it is updated in place when a
    vertex is added (an explicit ``addv LABEL`` label, else one past
    the largest existing numeric label).  Returns the internal-id
    :class:`Edit` actually applied.
    """
    if edit.op == "add_vertex":
        label = edit.u
        if label is None:
            numeric = [lab for lab in labels.values() if isinstance(lab, int)]
            label = (max(numeric) + 1) if numeric else 0
        if label in labels.values():
            raise ValueError(f"addv label {label} already names a vertex")
        new_id = target.add_vertex()
        labels[new_id] = label
        return Edit("add_vertex")
    inverse = {label: v for v, label in labels.items()}
    missing = [w for w in (edit.u, edit.v) if w not in inverse]
    if missing:
        raise ValueError(f"unknown vertex label(s) {missing} in {edit.as_line()!r}")
    return target.apply(Edit(edit.op, inverse[edit.u], inverse[edit.v]))
