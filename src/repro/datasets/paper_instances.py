"""The paper's evaluation instances, pinned by seed.

The paper evaluates on synthetic datasets identified only by vertex and
edge counts: ``G_{n,m}`` for the gate experiments (Tables II-IV) and the
denser ``D_{n,m}`` for the annealing experiments (Tables V-VII,
Figs. 13-15).  We regenerate them as seeded uniform G(n, m) graphs, with
seeds chosen so the optimum k-plex sizes the paper states are matched
where that is possible:

* ``G_{7,8}``, ``G_{8,10}``, ``G_{9,15}``, ``G_{10,23}`` match Table II
  exactly (max 2-plex sizes 4, 4, 5, 6);
* ``G_{10,37}``: Table III's profile (6, 6, 6, 7 for k = 2..5) is
  *unattainable* for any graph with n = 10, m = 37 — the complement has
  only 8 edges, and removing the two largest complement-degree vertices
  always leaves an 8-vertex 5-plex, so the maximum 5-plex is >= 8 > 7.
  We pin a seed with a k-dependent profile (7, 8, 10, 10) and note the
  deviation in EXPERIMENTS.md; every claim the table supports (runtime
  nearly flat in k, sustained speedup, error probability independent of
  k) is still exercised;
* ``D_{n,m}`` seeds are chosen so the k = 3 QUBO is non-trivial (the
  optimum is below n and at least one vertex needs slack variables).

``figure1_graph`` is the paper's running example, reverse-engineered
from the complement edges listed in its Fig. 6 encoding circuit; its
maximum 2-plex is {v1, v2, v4, v5} (size 4) as shown in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import Graph, gnm_random_graph

__all__ = [
    "PaperInstance",
    "figure1_graph",
    "gate_instances",
    "annealing_instances",
    "load_instance",
    "chain_experiment_graph",
    "GATE_INSTANCES",
    "ANNEALING_INSTANCES",
]


@dataclass(frozen=True)
class PaperInstance:
    """A named evaluation instance with its generation recipe."""

    name: str
    num_vertices: int
    num_edges: int
    seed: int
    known_optima: dict[int, int]  # k -> maximum k-plex size (verified)

    def build(self) -> Graph:
        return gnm_random_graph(self.num_vertices, self.num_edges, seed=self.seed)


#: Gate-model instances (Tables II-IV).  ``known_optima`` values were
#: certified with the exact branch-and-search solver.
GATE_INSTANCES: dict[str, PaperInstance] = {
    "G_7_8": PaperInstance("G_7_8", 7, 8, seed=0, known_optima={2: 4}),
    "G_8_10": PaperInstance("G_8_10", 8, 10, seed=0, known_optima={2: 4}),
    "G_9_15": PaperInstance("G_9_15", 9, 15, seed=12, known_optima={2: 5}),
    "G_10_23": PaperInstance("G_10_23", 10, 23, seed=0, known_optima={2: 6}),
    "G_10_37": PaperInstance(
        "G_10_37", 10, 37, seed=23, known_optima={2: 7, 3: 8, 4: 10, 5: 10}
    ),
}

#: Annealing instances (Tables V-VII, Figs. 13-14).
ANNEALING_INSTANCES: dict[str, PaperInstance] = {
    "D_10_40": PaperInstance("D_10_40", 10, 40, seed=3, known_optima={3: 9}),
    "D_15_70": PaperInstance("D_15_70", 15, 70, seed=0, known_optima={3: 9}),
    "D_20_100": PaperInstance("D_20_100", 20, 100, seed=0, known_optima={3: 9}),
    "D_30_300": PaperInstance("D_30_300", 30, 300, seed=0, known_optima={3: 14}),
}


def figure1_graph() -> Graph:
    """The 6-vertex running example (Fig. 1), 0-indexed.

    Vertex ``i`` here is the paper's ``v_{i+1}``.  The complement's
    edge set {(v1,v6), (v2,v6), (v3,v6), (v4,v6), (v2,v5), (v2,v3),
    (v3,v5), (v3,v4)} is exactly the one encoded in Fig. 6 box A.
    """
    return Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 3), (3, 4), (4, 5)])


def gate_instances() -> dict[str, Graph]:
    """Build all gate-model instances, keyed by name."""
    return {name: inst.build() for name, inst in GATE_INSTANCES.items()}


def annealing_instances() -> dict[str, Graph]:
    """Build all annealing instances, keyed by name."""
    return {name: inst.build() for name, inst in ANNEALING_INSTANCES.items()}


def load_instance(name: str) -> Graph:
    """Build one instance by name (e.g. ``"G_10_23"`` or ``"D_20_100"``)."""
    registry = {**GATE_INSTANCES, **ANNEALING_INSTANCES}
    if name not in registry:
        raise KeyError(
            f"unknown instance {name!r}; available: {sorted(registry)}"
        )
    return registry[name].build()


def chain_experiment_graph(n: int, density: float = 0.7, seed: int = 0) -> Graph:
    """Instances for the embedding-growth sweep (Fig. 15).

    The paper scales ``n`` from 10 to 43 at roughly the density of its
    ``D`` instances; edge count is ``round(density * C(n, 2))``.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    m = round(density * n * (n - 1) / 2)
    return gnm_random_graph(n, m, seed=seed)
