"""Evaluation datasets: the paper's pinned instances and generators."""

from .paper_instances import (
    ANNEALING_INSTANCES,
    GATE_INSTANCES,
    PaperInstance,
    annealing_instances,
    chain_experiment_graph,
    figure1_graph,
    gate_instances,
    load_instance,
)

__all__ = [
    "ANNEALING_INSTANCES",
    "GATE_INSTANCES",
    "PaperInstance",
    "annealing_instances",
    "chain_experiment_graph",
    "figure1_graph",
    "gate_instances",
    "load_instance",
]
