"""Random and structured graph generators.

These produce the synthetic workloads of the paper's evaluation: the
``G_{n,m}`` instances used for the gate-based experiments and the denser
``D_{n,m}`` instances used for the annealing experiments, plus generic
G(n, m) / G(n, p) models and planted k-plex instances for testing.

All generators are deterministic given a ``seed`` so that benchmark rows
are reproducible run to run.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .graph import Graph

__all__ = [
    "gnm_random_graph",
    "gnp_random_graph",
    "complete_graph",
    "empty_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "planted_kplex_graph",
    "barabasi_albert_graph",
    "stochastic_block_model",
]


def _check_nm(n: int, m: int) -> None:
    max_m = n * (n - 1) // 2
    if m < 0 or m > max_m:
        raise ValueError(f"m={m} impossible for n={n} (max {max_m})")


def gnm_random_graph(n: int, m: int, seed: int | None = None) -> Graph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges.

    This is the Erdos-Renyi G(n, m) model; the paper's ``G_{i,j}`` and
    ``D_{i,j}`` datasets are instances of it (with seeds chosen so
    stated optimum sizes match, see :mod:`repro.datasets`).
    """
    _check_nm(n, m)
    rng = random.Random(seed)
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = rng.sample(all_pairs, m)
    return Graph(n, edges)


def gnp_random_graph(n: int, p: float, seed: int | None = None) -> Graph:
    """Erdos-Renyi G(n, p): each pair is an edge independently with prob ``p``."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """K_n: every pair adjacent (the unique maximum 1-plex of size n)."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def empty_graph(n: int) -> Graph:
    """n isolated vertices (max k-plex size is min(n, k))."""
    return Graph(n)


def cycle_graph(n: int) -> Graph:
    """C_n: vertices in a ring."""
    if n < 3:
        raise ValueError(f"cycle needs n >= 3, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """P_n: a simple path."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> Graph:
    """Star with centre 0 and ``n - 1`` leaves."""
    if n < 1:
        raise ValueError("star needs at least one vertex")
    return Graph(n, [(0, i) for i in range(1, n)])


def planted_kplex_graph(
    n: int,
    plex_size: int,
    k: int,
    background_p: float = 0.15,
    seed: int | None = None,
) -> Graph:
    """Random graph with a planted k-plex of the requested size.

    The first ``plex_size`` vertices form a k-plex that is "as loose as
    allowed": we start from a clique on them and delete, for each
    vertex, up to ``k - 1`` incident internal edges while keeping every
    internal degree >= ``plex_size - k``.  The remaining vertex pairs
    appear with probability ``background_p``.

    Useful for tests: the planted set is always a valid k-plex, so the
    maximum k-plex has size >= ``plex_size``.
    """
    if plex_size > n:
        raise ValueError(f"plex_size {plex_size} exceeds n={n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = random.Random(seed)
    plex = list(range(plex_size))
    internal = {(u, v) for u in plex for v in plex if u < v}
    # Delete edges without violating the k-plex condition on the planted set.
    deficiency = {v: 0 for v in plex}  # number of missing internal neighbours
    candidates = list(internal)
    rng.shuffle(candidates)
    for (u, v) in candidates:
        if deficiency[u] < k - 1 and deficiency[v] < k - 1 and rng.random() < 0.5:
            internal.discard((u, v))
            deficiency[u] += 1
            deficiency[v] += 1
    edges = set(internal)
    for u in range(n):
        for v in range(u + 1, n):
            if u in deficiency and v in deficiency:
                continue
            if rng.random() < background_p:
                edges.add((u, v))
    return Graph(n, sorted(edges))


def barabasi_albert_graph(n: int, m: int, seed: int | None = None) -> Graph:
    """Preferential-attachment graph (scale-free, social-network shaped).

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to their degree.  Used by the examples to
    mimic social networks, where k-plex search is motivated.
    """
    if m < 1 or m >= n:
        raise ValueError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-vertex list implements preferential attachment.
    repeated: list[int] = list(range(m))
    for new in range(m, n):
        targets = _sample_distinct(repeated, m, rng) if edges else list(range(m))
        for t in targets:
            edges.append((t, new))
            repeated.extend((t, new))
    return Graph(n, edges)


def stochastic_block_model(
    block_sizes: Sequence[int],
    p_within: float,
    p_between: float,
    seed: int | None = None,
) -> Graph:
    """Stochastic block model: dense blocks, sparse between-block ties.

    The canonical community-structure generator: vertices are grouped
    into blocks of the given sizes; within-block pairs are edges with
    probability ``p_within``, cross-block pairs with ``p_between``.
    Community-detection examples use it to produce graphs whose maximal
    k-plexes align with the planted blocks.
    """
    if not block_sizes or any(s < 1 for s in block_sizes):
        raise ValueError(f"block sizes must be positive, got {block_sizes}")
    for name, p in (("p_within", p_within), ("p_between", p_between)):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    rng = random.Random(seed)
    block_of: list[int] = []
    for b, size in enumerate(block_sizes):
        block_of.extend([b] * size)
    n = len(block_of)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < (p_within if block_of[u] == block_of[v] else p_between)
    ]
    return Graph(n, edges)


def _sample_distinct(pool: Sequence[int], count: int, rng: random.Random) -> list[int]:
    """Sample ``count`` distinct values from ``pool`` (with repetition bias)."""
    chosen: set[int] = set()
    while len(chosen) < count:
        chosen.add(rng.choice(pool))
    return list(chosen)
