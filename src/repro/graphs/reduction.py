"""Graph reductions that preserve large k-plexes.

The paper integrates the core-truss co-pruning technique of Chang et
al. (2022) so that inputs fit within simulator qubit limits: vertices and
edges that provably cannot belong to a k-plex larger than the current
lower bound are deleted before the quantum search runs.

Both rules below assume we only care about k-plexes of size
``>= lower_bound + 1`` (i.e. strictly better than a known solution):

* **first-order (core) rule** — every vertex of a k-plex ``P`` has at
  least ``|P| - k`` neighbours inside ``P``, hence at least
  ``lower_bound + 1 - k`` neighbours in the whole graph.  Vertices of
  smaller degree are deleted, iteratively (a k-core computation with
  threshold ``lower_bound + 1 - k``).
* **second-order (truss) rule** — two *adjacent* vertices ``u, v`` of a
  k-plex ``P`` have at least ``|P| - 2k`` common neighbours inside ``P``
  (each misses at most ``k - 1`` of the others), hence at least
  ``lower_bound + 1 - 2k`` common neighbours in the graph.  Edges with
  fewer common neighbours are deleted; vertex degrees then shrink and
  the core rule re-fires.

Deleting an edge cannot create new k-plexes, and neither rule can delete
anything belonging to a k-plex of size ``>= lower_bound + 1``, so the
reduced graph retains every maximum k-plex whenever the optimum exceeds
the lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph

__all__ = ["ReductionResult", "core_reduction", "truss_reduction", "co_prune"]


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of a reduction pass.

    Attributes
    ----------
    graph:
        The reduced graph (vertices relabelled to ``0..n'-1``).
    kept_vertices:
        ``kept_vertices[i]`` is the original id of reduced vertex ``i``.
    removed_vertices:
        Original ids of deleted vertices.
    removed_edge_count:
        Edges deleted by the truss rule (beyond those lost to vertex
        deletion).
    """

    graph: Graph
    kept_vertices: list[int]
    removed_vertices: list[int]
    removed_edge_count: int = 0

    def translate_back(self, subset: frozenset[int] | set[int]) -> frozenset[int]:
        """Map a vertex subset of the reduced graph to original ids."""
        return frozenset(self.kept_vertices[v] for v in subset)


def core_reduction(graph: Graph, k: int, lower_bound: int) -> ReductionResult:
    """First-order reduction: iteratively drop low-degree vertices.

    Keeps every k-plex of size ``>= lower_bound + 1`` intact.  With
    ``lower_bound = 0`` (no known solution) the threshold ``1 - k`` is
    non-positive for ``k >= 1`` and nothing is removed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    threshold = lower_bound + 1 - k
    alive = set(graph.vertices)
    degree = {v: graph.degree(v) for v in alive}
    queue = [v for v in alive if degree[v] < threshold]
    while queue:
        v = queue.pop()
        if v not in alive:
            continue
        alive.discard(v)
        for w in graph.neighbors(v):
            if w in alive:
                degree[w] -= 1
                if degree[w] < threshold:
                    queue.append(w)
    kept = sorted(alive)
    removed = sorted(set(graph.vertices) - alive)
    return ReductionResult(graph.induced_subgraph(kept), kept, removed)


def truss_reduction(graph: Graph, k: int, lower_bound: int) -> ReductionResult:
    """Second-order reduction: drop edges with too few common neighbours.

    An edge ``(u, v)`` can belong to a k-plex of size
    ``>= lower_bound + 1`` only if ``u`` and ``v`` share at least
    ``lower_bound + 1 - 2k`` neighbours.  Edge deletions cascade until a
    fixed point, then isolated low-degree vertices are handed to
    :func:`core_reduction`.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    threshold = lower_bound + 1 - 2 * k
    adj = {v: set(graph.neighbors(v)) for v in graph.vertices}
    removed_edges = 0
    if threshold > 0:
        dirty = set(graph.edges)
        while dirty:
            u, v = dirty.pop()
            if v not in adj[u]:
                continue
            common = adj[u] & adj[v]
            if len(common) < threshold:
                adj[u].discard(v)
                adj[v].discard(u)
                removed_edges += 1
                # Support counts of edges incident to u, v may now fail.
                for w in adj[u]:
                    dirty.add((min(u, w), max(u, w)))
                for w in adj[v]:
                    dirty.add((min(v, w), max(v, w)))
    pruned = Graph(
        graph.num_vertices,
        [(u, v) for u in adj for v in adj[u] if u < v],
    )
    core = core_reduction(pruned, k, lower_bound)
    return ReductionResult(
        core.graph, core.kept_vertices, core.removed_vertices, removed_edges
    )


def co_prune(graph: Graph, k: int, lower_bound: int) -> ReductionResult:
    """Core-truss co-pruning: alternate both rules to a fixed point.

    This is the reduction the paper applies before running qMKP so that
    reduced instances fit the quantum simulator.  The composition of
    safe reductions is safe, so the result still contains every k-plex
    of size ``>= lower_bound + 1``.
    """
    kept = list(graph.vertices)
    current = graph
    removed_edge_total = 0
    while True:
        step = truss_reduction(current, k, lower_bound)
        removed_edge_total += step.removed_edge_count
        if not step.removed_vertices and step.removed_edge_count == 0:
            return ReductionResult(
                current,
                kept,
                sorted(set(graph.vertices) - set(kept)),
                removed_edge_total,
            )
        # Compose the step's vertex mapping with the accumulated one.
        kept = [kept[i] for i in step.kept_vertices]
        current = step.graph
