"""Connectivity and distance helpers.

The adaptability section of the paper points at diameter-based clique
relaxations (n-clan, n-club); those need shortest-path distances and
connected components, provided here without external dependencies.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .graph import Graph

__all__ = [
    "connected_components",
    "is_connected",
    "bfs_distances",
    "pairwise_distances",
    "diameter",
    "subset_diameter",
]


def connected_components(graph: Graph) -> list[frozenset[int]]:
    """Connected components, each a frozenset, largest first."""
    seen: set[int] = set()
    components: list[frozenset[int]] = []
    for start in graph.vertices:
        if start in seen:
            continue
        queue = deque([start])
        comp = {start}
        seen.add(start)
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in comp:
                    comp.add(w)
                    seen.add(w)
                    queue.append(w)
        components.append(frozenset(comp))
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """True for the empty graph, single components, else False."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def bfs_distances(graph: Graph, source: int) -> dict[int, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def pairwise_distances(graph: Graph) -> dict[tuple[int, int], int]:
    """All-pairs hop distances for reachable pairs (u <= v keys)."""
    out: dict[tuple[int, int], int] = {}
    for u in graph.vertices:
        for v, d in bfs_distances(graph, u).items():
            if u <= v:
                out[(u, v)] = d
    return out


def diameter(graph: Graph) -> int:
    """Longest shortest path; raises on disconnected or empty graphs."""
    if graph.num_vertices == 0:
        raise ValueError("diameter of the empty graph is undefined")
    best = 0
    for u in graph.vertices:
        dist = bfs_distances(graph, u)
        if len(dist) != graph.num_vertices:
            raise ValueError("graph is disconnected; diameter is infinite")
        best = max(best, max(dist.values()))
    return best


def subset_diameter(graph: Graph, subset: Iterable[int]) -> int | None:
    """Diameter of the subgraph induced on ``subset``.

    Returns ``None`` if the induced subgraph is disconnected.  Distances
    are computed *within* the induced subgraph (the n-club convention),
    not through outside vertices.
    """
    sub = graph.induced_subgraph(subset)
    if sub.num_vertices == 0:
        return None
    if not is_connected(sub):
        return None
    return diameter(sub)
