"""Graph serialisation: edge-list text format and adjacency matrices.

The edge-list format is the one used by common graph-repository dumps
(SNAP, DIMACS-like):

* blank lines and lines starting with ``#`` or ``%`` are ignored;
* the optional header ``n m`` may give vertex/edge counts;
* every other line is ``u v``.

Vertices may be arbitrary non-negative integers in the file; they are
compacted to ``0..n-1`` preserving numeric order, and the mapping is
returned so callers can translate solutions back to original ids.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = [
    "parse_edge_list",
    "read_edge_list",
    "write_edge_list",
    "to_adjacency_matrix",
    "from_adjacency_matrix",
    "to_networkx",
    "from_networkx",
]


def parse_edge_list(text: str) -> tuple[Graph, dict[int, int]]:
    """Parse edge-list text into ``(graph, original_id_by_vertex)``.

    Returns the graph plus a mapping from compacted vertex id to the
    vertex label that appeared in the text.
    """
    raw_edges: list[tuple[int, int]] = []
    labels: set[int] = set()
    for lineno, line in enumerate(io.StringIO(text), start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in "#%":
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: expected 'u v', got {stripped!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ValueError(f"line {lineno}: non-integer vertex in {stripped!r}") from exc
        if u == v:
            continue  # drop self-loops silently, as graph repositories do
        raw_edges.append((u, v))
        labels.update((u, v))
    ordered = sorted(labels)
    compact = {label: i for i, label in enumerate(ordered)}
    graph = Graph(len(ordered), [(compact[u], compact[v]) for u, v in raw_edges])
    return graph, {i: label for label, i in compact.items()}


def read_edge_list(path: str | Path) -> tuple[Graph, dict[int, int]]:
    """Read an edge-list file; see :func:`parse_edge_list`."""
    return parse_edge_list(Path(path).read_text())


def write_edge_list(graph: Graph, path: str | Path, header: bool = True) -> None:
    """Write ``graph`` as an edge-list file (one ``u v`` pair per line)."""
    lines = []
    if header:
        lines.append(f"# n={graph.num_vertices} m={graph.num_edges}")
    lines.extend(f"{u} {v}" for u, v in sorted(graph.edges))
    Path(path).write_text("\n".join(lines) + "\n")


def to_adjacency_matrix(graph: Graph) -> np.ndarray:
    """Dense symmetric 0/1 adjacency matrix (dtype uint8)."""
    n = graph.num_vertices
    mat = np.zeros((n, n), dtype=np.uint8)
    for u, v in graph.edges:
        mat[u, v] = 1
        mat[v, u] = 1
    return mat


def from_adjacency_matrix(matrix: np.ndarray) -> Graph:
    """Build a graph from a square symmetric 0/1 matrix.

    The diagonal must be zero (no self-loops) and the matrix symmetric.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {mat.shape}")
    if np.any(np.diag(mat)):
        raise ValueError("adjacency matrix has a non-zero diagonal (self-loop)")
    if not np.array_equal(mat, mat.T):
        raise ValueError("adjacency matrix must be symmetric")
    n = mat.shape[0]
    rows, cols = np.nonzero(np.triu(mat, k=1))
    return Graph(n, list(zip(rows.tolist(), cols.tolist())))


def to_networkx(graph: Graph):
    """Convert to a :class:`networkx.Graph` (for plotting/analysis)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.vertices)
    g.add_edges_from(graph.edges)
    return g


def from_networkx(nx_graph) -> tuple[Graph, dict[int, object]]:
    """Convert from networkx; returns ``(graph, original_label_by_vertex)``."""
    nodes = sorted(nx_graph.nodes(), key=str)
    compact = {node: i for i, node in enumerate(nodes)}
    edges = [(compact[u], compact[v]) for u, v in nx_graph.edges() if u != v]
    return Graph(len(nodes), edges), {i: node for node, i in compact.items()}
