"""Graph substrate: data structure, generators, IO, and reductions."""

from .connectivity import (
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
    pairwise_distances,
    subset_diameter,
)
from .generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random_graph,
    gnp_random_graph,
    path_graph,
    planted_kplex_graph,
    star_graph,
    stochastic_block_model,
)
from .graph import Graph
from .io import (
    from_adjacency_matrix,
    from_networkx,
    parse_edge_list,
    read_edge_list,
    to_adjacency_matrix,
    to_networkx,
    write_edge_list,
)
from .reduction import ReductionResult, co_prune, core_reduction, truss_reduction

__all__ = [
    "Graph",
    "ReductionResult",
    "barabasi_albert_graph",
    "bfs_distances",
    "co_prune",
    "complete_graph",
    "connected_components",
    "core_reduction",
    "cycle_graph",
    "diameter",
    "empty_graph",
    "from_adjacency_matrix",
    "from_networkx",
    "gnm_random_graph",
    "gnp_random_graph",
    "is_connected",
    "parse_edge_list",
    "path_graph",
    "pairwise_distances",
    "planted_kplex_graph",
    "read_edge_list",
    "star_graph",
    "stochastic_block_model",
    "subset_diameter",
    "to_adjacency_matrix",
    "to_networkx",
    "truss_reduction",
    "write_edge_list",
]
