"""Core graph data structure used across the library.

The paper works with simple, undirected, unweighted graphs whose vertices
are identified by integers ``0 .. n-1``.  :class:`Graph` is a small,
dependency-free adjacency-set representation with the handful of
operations the k-plex algorithms need: degree queries, induced subgraphs,
complements, and neighbourhood access.  Instances are immutable once
built, which lets higher layers (oracles, QUBO builders, reductions)
share them freely without defensive copies.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator

__all__ = ["Graph"]


def _normalise_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical (min, max) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


class Graph:
    """A simple undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are the integers ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected and
        duplicate edges (in either orientation) are collapsed.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = (
        "_n", "_adj", "_edges", "_hash", "_adj_masks",
        "_fingerprint_cache", "_complement_cache",
    )

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._n = int(num_vertices)
        adj: list[set[int]] = [set() for _ in range(self._n)]
        edge_set: set[tuple[int, int]] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"self-loop on vertex {u} is not allowed")
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            edge_set.add(_normalise_edge(u, v))
            adj[u].add(v)
            adj[v].add(u)
        self._adj: tuple[frozenset[int], ...] = tuple(frozenset(s) for s in adj)
        self._edges: frozenset[tuple[int, int]] = frozenset(edge_set)
        self._hash: int | None = None
        self._adj_masks: tuple[int, ...] | None = None
        # Identity-keyed memo slots: each holds (edges_ref, n, value) and
        # is served only while ``edges_ref is self._edges`` still holds,
        # so rebinding the edge set (the only way to "mutate" a Graph,
        # since frozensets cannot change in place) invalidates them.
        self._fingerprint_cache: tuple[frozenset, int, str] | None = None
        self._complement_cache: tuple[frozenset, int, "Graph"] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return len(self._edges)

    @property
    def vertices(self) -> range:
        """The vertex set as a ``range`` object."""
        return range(self._n)

    @property
    def edges(self) -> frozenset[tuple[int, int]]:
        """The edge set as canonical ``(min, max)`` pairs."""
        return self._edges

    def neighbors(self, v: int) -> frozenset[int]:
        """Neighbour set of vertex ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v`` in the whole graph."""
        return len(self._adj[v])

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return [len(s) for s in self._adj]

    def max_degree(self) -> int:
        """Largest vertex degree (0 for the empty graph)."""
        return max(self.degrees(), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        return _normalise_edge(u, v) in self._edges

    def density(self) -> float:
        """Edge density ``m / C(n, 2)`` (0.0 for n < 2)."""
        if self._n < 2:
            return 0.0
        return 2.0 * self.num_edges / (self._n * (self._n - 1))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def complement(self) -> "Graph":
        """The complement graph on the same vertex set.

        A k-plex in ``self`` is exactly a k-cplex (every vertex of the
        subset has internal degree <= k-1) in the complement; the gate
        oracle and the QUBO both operate on this form.

        The built complement is memoized per edge-set identity (the
        oracle/draw CLI paths and every qTKP probe used to rebuild the
        O(n^2) edge list from scratch).  Mutating the graph by rebinding
        ``_edges`` invalidates the memo; the cached complement also
        back-references this graph, so ``g.complement().complement()``
        returns ``g`` itself.
        """
        cached = self._complement_cache
        if (
            cached is not None
            and cached[0] is self._edges
            and cached[1] == self._n
        ):
            return cached[2]
        missing = [
            (u, v)
            for u in range(self._n)
            for v in range(u + 1, self._n)
            if (u, v) not in self._edges
        ]
        comp = Graph(self._n, missing)
        self._complement_cache = (self._edges, self._n, comp)
        comp._complement_cache = (comp._edges, comp._n, self)
        return comp

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Subgraph induced on ``vertices``, relabelled to ``0..len-1``.

        The relabelling preserves the sorted order of the chosen
        vertices.  Use :meth:`degree_in` when you only need degrees
        inside a subset without relabelling.
        """
        keep = sorted(set(vertices))
        index = {v: i for i, v in enumerate(keep)}
        for v in keep:
            if not (0 <= v < self._n):
                raise ValueError(f"vertex {v} out of range")
        edges = [
            (index[u], index[v])
            for (u, v) in self._edges
            if u in index and v in index
        ]
        return Graph(len(keep), edges)

    def degree_in(self, v: int, subset: frozenset[int] | set[int]) -> int:
        """Degree of ``v`` counted only against vertices in ``subset``."""
        return len(self._adj[v] & subset)

    def adjacency_masks(self) -> tuple[int, ...]:
        """Per-vertex neighbour sets as integer bitmasks (bit ``i`` = vertex ``i``).

        Computed once and cached; the tuple is shared, so callers must
        not mutate it (they cannot — ints are immutable).  This is the
        substrate for every bit-parallel fast path: membership and
        intersection become single AND operations.
        """
        if self._adj_masks is None:
            masks = []
            for nbrs in self._adj:
                m = 0
                for w in nbrs:
                    m |= 1 << w
                masks.append(m)
            self._adj_masks = tuple(masks)
        return self._adj_masks

    def complement_adjacency_masks(self) -> tuple[int, ...]:
        """Per-vertex complement-neighbour bitmasks, without building the complement.

        ``comp[v]`` has a bit for every vertex that is *not* adjacent to
        ``v`` (and is not ``v`` itself).  Derived in O(n) from
        :meth:`adjacency_masks`, versus the O(n^2) edge materialisation
        of :meth:`complement`.
        """
        universe = (1 << self._n) - 1
        return tuple(
            universe ^ (1 << v) ^ m for v, m in enumerate(self.adjacency_masks())
        )

    def degree_in_mask(self, v: int, mask: int) -> int:
        """Degree of ``v`` against the subset encoded as a bitmask.

        The bit-parallel equivalent of :meth:`degree_in`: one AND plus a
        popcount, with no set objects built per call.
        """
        return (self.adjacency_masks()[v] & mask).bit_count()

    def fingerprint(self) -> str:
        """Structural digest: SHA-256 over ``n`` and the canonical edge set.

        Two graphs have equal fingerprints iff they are structurally
        identical (same ``n``, same edges), regardless of construction
        history or object identity — the right cache key for anything
        derived from the structure alone (e.g. the bit-parallel
        marked-set tables).

        Memoized per edge-set identity: the digest is served from the
        memo only while the memo's edge-set reference *is* the live
        ``_edges`` object.  The class is immutable by convention, but
        Python cannot enforce it; because ``_edges`` is a frozenset, the
        only way to change the structure is to rebind the attribute,
        which breaks the identity check and forces a recompute — so a
        stale digest can never be served even after a behind-the-back
        mutation.
        """
        cached = self._fingerprint_cache
        if (
            cached is not None
            and cached[0] is self._edges
            and cached[1] == self._n
        ):
            return cached[2]
        h = hashlib.sha256()
        h.update(b"n=%d;" % self._n)
        for u, v in sorted(self._edges):
            h.update(b"%d,%d;" % (u, v))
        digest = h.hexdigest()
        self._fingerprint_cache = (self._edges, self._n, digest)
        return digest

    def remove_vertices(self, drop: Iterable[int]) -> tuple["Graph", list[int]]:
        """Remove ``drop`` and return ``(subgraph, kept_vertex_ids)``.

        ``kept_vertex_ids[i]`` is the original id of the new vertex
        ``i``; callers use it to translate solutions back.
        """
        dropped = set(drop)
        kept = [v for v in range(self._n) if v not in dropped]
        return self.induced_subgraph(kept), kept

    # ------------------------------------------------------------------
    # Subset encodings (shared with the quantum layer)
    # ------------------------------------------------------------------
    def subset_to_bitmask(self, subset: Iterable[int]) -> int:
        """Encode a vertex subset as an integer bitmask.

        Vertex ``i`` corresponds to bit ``i`` (LSB = vertex 0).  This is
        the encoding the Grover engine uses for its ``2^n`` basis states.
        """
        mask = 0
        for v in subset:
            if not (0 <= v < self._n):
                raise ValueError(f"vertex {v} out of range")
            mask |= 1 << v
        return mask

    def bitmask_to_subset(self, mask: int) -> frozenset[int]:
        """Decode an integer bitmask back into a vertex subset."""
        if mask < 0 or mask >= (1 << self._n):
            raise ValueError(f"bitmask {mask} out of range for n={self._n}")
        return frozenset(v for v in range(self._n) if mask >> v & 1)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, edge: tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._edges))
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"
