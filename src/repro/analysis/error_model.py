"""Error-probability analysis for the gate algorithms.

The paper argues (Section V-A) that qTKP's measurement error converges
roughly as ``pi^2 / (4I)^2`` in the iteration count ``I``, and that
``c`` independent repetitions drive it to ``(pi^2 / (4I)^2)^c``.  This
module provides those bounds alongside the exact trigonometric values,
so experiments can report both.
"""

from __future__ import annotations

import math

from ..grover import error_probability, paper_error_bound

__all__ = [
    "exact_error",
    "bound_error",
    "repeated_error",
    "iterations_for_error",
    "noisy_success_probability",
    "noise_limited_iterations",
]


def exact_error(num_states: int, num_marked: int, iterations: int) -> float:
    """Exact failure probability ``1 - sin^2((2I+1) theta)``."""
    return error_probability(num_states, num_marked, iterations)


def bound_error(iterations: int) -> float:
    """The paper's bound ``pi^2 / (4I)^2``."""
    return paper_error_bound(iterations)


def repeated_error(iterations: int, repetitions: int) -> float:
    """Error after ``repetitions`` independent runs, per the paper."""
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    return bound_error(iterations) ** repetitions


def iterations_for_error(target: float) -> int:
    """Smallest ``I`` with ``pi^2 / (4I)^2 <= target``."""
    if not (0.0 < target < 1.0):
        raise ValueError(f"target must be in (0, 1), got {target}")
    return max(1, math.ceil(math.pi / (4.0 * math.sqrt(target))))


def noisy_success_probability(
    num_states: int, num_marked: int, iterations: int, depolarizing_rate: float
) -> float:
    """Grover success under per-iteration global depolarizing noise.

    With rate ``lambda``, each round replaces the state by the maximally
    mixed state with probability ``lambda``.  Because unitary
    conjugation leaves ``I / N`` invariant, depolarized probability mass
    stays uniform for the rest of the run, giving the closed form

        p(i) = (1 - lambda)^i * sin^2((2i+1) theta)
               + (1 - (1 - lambda)^i) * M / N.

    This is the NISQ ceiling the paper's limitation section alludes to:
    past the coherence budget, extra iterations stop helping and the
    success probability saturates at ``M / N``-weighted noise.
    """
    if not (0.0 <= depolarizing_rate <= 1.0):
        raise ValueError(
            f"depolarizing_rate must be in [0, 1], got {depolarizing_rate}"
        )
    from ..grover import success_probability

    coherent = (1.0 - depolarizing_rate) ** iterations
    pure = success_probability(num_states, num_marked, iterations)
    uniform = num_marked / num_states
    return coherent * pure + (1.0 - coherent) * uniform


def noise_limited_iterations(
    num_states: int, num_marked: int, depolarizing_rate: float
) -> int:
    """The iteration count maximising the noisy success probability.

    Scans up to the noiseless optimum; with strong noise the argmax
    lands well before it (running longer only decoheres).
    """
    from ..grover import optimal_iterations

    horizon = optimal_iterations(num_states, num_marked) + 1
    best_i, best_p = 0, noisy_success_probability(
        num_states, num_marked, 0, depolarizing_rate
    )
    for i in range(1, horizon + 1):
        p = noisy_success_probability(num_states, num_marked, i, depolarizing_rate)
        if p > best_p:
            best_i, best_p = i, p
    return best_i
