"""Analysis layer: error models, runtime models, table rendering."""

from .error_model import (
    bound_error,
    exact_error,
    iterations_for_error,
    noise_limited_iterations,
    noisy_success_probability,
    repeated_error,
)
from .progression import AnytimeCurve, curve_from_cost_runs, curve_from_qmkp
from .runtime_model import PAPER_ANCHOR, RuntimeModel
from .tables import format_table, results_dir, write_result

__all__ = [
    "AnytimeCurve",
    "PAPER_ANCHOR",
    "RuntimeModel",
    "bound_error",
    "curve_from_cost_runs",
    "curve_from_qmkp",
    "exact_error",
    "format_table",
    "iterations_for_error",
    "noise_limited_iterations",
    "noisy_success_probability",
    "repeated_error",
    "results_dir",
    "write_result",
]
