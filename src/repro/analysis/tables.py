"""Plain-text table rendering and result-file output for the harness.

Every benchmark regenerates one of the paper's tables or figures; these
helpers print the rows in a stable ASCII format and persist them under
``results/`` so `pytest benchmarks/` leaves inspectable artifacts.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "results_dir", "write_result"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def results_dir() -> Path:
    """The ``results/`` directory next to the repository root."""
    root = Path(__file__).resolve().parents[3].parent
    # src/repro/analysis -> src -> repo root
    candidate = Path(__file__).resolve()
    for parent in candidate.parents:
        if (parent / "pyproject.toml").exists():
            root = parent
            break
    out = root / "results"
    out.mkdir(exist_ok=True)
    return out


def write_result(name: str, text: str) -> Path:
    """Write a rendered table/figure to ``results/<name>.txt``."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path
