"""Anytime-behaviour analysis for progressive algorithms.

Both of the paper's algorithms are *progressive*: qMKP surfaces a
feasible k-plex after every successful probe, and qaMKP's best-found
cost improves with runtime.  Comparing such algorithms fairly needs
more than final values; this module provides the standard anytime
metrics:

* :class:`AnytimeCurve` — a step function "best quality so far vs
  budget spent", built from event lists;
* quality-at-budget and budget-to-quality queries;
* the normalised area under the curve (higher = better anytime
  behaviour), the primal-integral flavour used in MILP benchmarking.

Quality is "bigger is better" (plex size, or negated cost).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["AnytimeCurve", "curve_from_qmkp", "curve_from_cost_runs"]


@dataclass(frozen=True)
class AnytimeCurve:
    """A non-decreasing step function of quality against budget.

    ``budgets[i]`` is the cumulative cost at which ``qualities[i]`` was
    first achieved; both sequences are sorted ascending (qualities
    non-decreasing).
    """

    budgets: tuple[float, ...]
    qualities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.budgets) != len(self.qualities):
            raise ValueError("budgets and qualities must have equal length")
        if list(self.budgets) != sorted(self.budgets):
            raise ValueError("budgets must be ascending")
        if list(self.qualities) != sorted(self.qualities):
            raise ValueError("qualities must be non-decreasing")

    @classmethod
    def from_events(
        cls, events: Sequence[tuple[float, float]]
    ) -> "AnytimeCurve":
        """Build from (budget, quality) events; dominated events dropped."""
        budgets: list[float] = []
        qualities: list[float] = []
        best = float("-inf")
        for budget, quality in sorted(events):
            if quality > best:
                budgets.append(float(budget))
                qualities.append(float(quality))
                best = quality
        return cls(tuple(budgets), tuple(qualities))

    def quality_at(self, budget: float) -> float | None:
        """Best quality achieved within ``budget`` (None before the first)."""
        idx = bisect_right(self.budgets, budget) - 1
        if idx < 0:
            return None
        return self.qualities[idx]

    def budget_for(self, quality: float) -> float | None:
        """Smallest budget reaching at least ``quality`` (None if never)."""
        for budget, achieved in zip(self.budgets, self.qualities):
            if achieved >= quality:
                return budget
        return None

    def final_quality(self) -> float | None:
        return self.qualities[-1] if self.qualities else None

    def normalized_auc(self, horizon: float, best_possible: float) -> float:
        """Area under quality/best_possible over [0, horizon], in [0, 1].

        1.0 means the optimum was available instantly; 0.0 means
        nothing was found within the horizon.

        Step-function convention (pinned by exact-value tests in
        ``tests/analysis/test_progression.py``):

        * the curve is **left-closed**: an event at budget ``b`` counts
          from ``b`` onwards, matching :meth:`quality_at` (which
          includes ``budget == b``);
        * before the first event the quality is 0 — a first event at
          budget ``b > 0`` contributes a zero-area prefix ``[0, b)``;
        * a horizon **strictly inside the last segment** truncates it:
          the tail ``[last_budget, horizon)`` is charged at the final
          quality;
        * an event **exactly at** ``horizon`` changes
          ``quality_at(horizon)`` but adds a zero-width segment, so it
          contributes nothing to the area;
        * events past the horizon are ignored entirely.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if best_possible <= 0:
            raise ValueError(
                f"best_possible must be positive, got {best_possible}"
            )
        area = 0.0
        for i, (start, quality) in enumerate(zip(self.budgets, self.qualities)):
            if start >= horizon:
                break  # budgets ascend: this and later events are outside
            # Segment runs to the next event, or to the horizon for the
            # last one; either way never past the horizon.
            if i + 1 < len(self.budgets):
                end = min(self.budgets[i + 1], horizon)
            else:
                end = horizon
            area += (end - start) * quality
        return max(0.0, min(1.0, area / (horizon * best_possible)))


def curve_from_qmkp(result) -> AnytimeCurve:
    """Anytime curve of a :class:`repro.core.qmkp.QMKPResult`.

    Budget is cumulative gate units; quality is the plex size.
    """
    return AnytimeCurve.from_events(
        [(e.cumulative_gate_units, float(e.size)) for e in result.progression]
    )


def curve_from_cost_runs(results) -> AnytimeCurve:
    """Anytime curve from :func:`repro.core.qamkp.cost_versus_runtime` output.

    Budget is the runtime in microseconds; quality is the negated
    objective cost (so lower cost = higher quality).
    """
    return AnytimeCurve.from_events(
        [(r.runtime_us, -r.cost) for r in results]
    )
