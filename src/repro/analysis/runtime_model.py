"""Runtime cost model for quantum-vs-classical comparisons.

The paper's Tables II-III report microseconds measured on the authors'
MacBook (classical BS) and derived from the Qiskit MPS simulator
(qMKP).  Neither absolute number is reproducible on different hardware,
so — as DESIGN.md documents — we regenerate those tables with a
transparent *work model*:

* classical branch-and-search work = search-tree nodes x an O(n^2)
  per-node charge;
* quantum work = executed gates (oracle + diffusion, all iterations).

The two unit costs are calibrated on a single anchor point — the paper's
``G_{10,23}`` row, where qMKP takes 130.3 us against BS's 353.7 us —
after which every other table cell is a model *prediction*; matching the
paper then means matching relative behaviour (speedup factors, trends in
n and k), which is exactly the shape-level criterion of the
reproduction.  Raw node/gate counts are always reported alongside so no
information hides behind the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuntimeModel", "PAPER_ANCHOR"]

#: The calibration anchor: the paper's G_{10,23} row of Table II.
PAPER_ANCHOR = {
    "instance": "G_10_23",
    "bs_us": 353.7,
    "qmkp_us": 130.3,
}


@dataclass(frozen=True)
class RuntimeModel:
    """Converts work counts into model microseconds.

    Attributes
    ----------
    classical_node_us:
        Model time per branch-and-search node per n^2 (i.e. a node on
        an n-vertex instance costs ``classical_node_us * n^2``).
    quantum_gate_us:
        Model time per executed quantum gate.
    """

    classical_node_us: float
    quantum_gate_us: float

    def classical_time_us(self, nodes: int, num_vertices: int) -> float:
        """Model time of a branch-and-search run."""
        return self.classical_node_us * nodes * num_vertices ** 2

    def quantum_time_us(self, gate_units: int) -> float:
        """Model time of a gate-model run."""
        return self.quantum_gate_us * gate_units

    @classmethod
    def calibrated(
        cls,
        anchor_nodes: int,
        anchor_gate_units: int,
        anchor_n: int,
        bs_us: float = PAPER_ANCHOR["bs_us"],
        qmkp_us: float = PAPER_ANCHOR["qmkp_us"],
    ) -> "RuntimeModel":
        """Fit the two unit costs to the anchor instance's measurements."""
        if anchor_nodes <= 0 or anchor_gate_units <= 0:
            raise ValueError("anchor work counts must be positive")
        return cls(
            classical_node_us=bs_us / (anchor_nodes * anchor_n ** 2),
            quantum_gate_us=qmkp_us / anchor_gate_units,
        )
