"""The paper's algorithms: the qTKP oracle, qTKP, qMKP, and qaMKP."""

from .oracle import KCplexOracle, OracleCosts
from .qamkp import QAMKPResult, cost_versus_runtime, qamkp
from .qmkp import ProgressCallback, ProgressEvent, QMKPResult, qmkp
from .qtkp import QTKPResult, qtkp
from .qubo_formulation import MkpQubo, build_mkp_qubo, slack_width
from .qubo_library import (
    GraphQubo,
    build_clique_qubo,
    build_independent_set_qubo,
    build_vertex_cover_qubo,
)
from .subset_search import (
    SubsetDecisionResult,
    SubsetSearchResult,
    grover_maximum_subset,
    grover_subset_decision,
    maximum_clique_quantum,
    maximum_independent_set_quantum,
    maximum_nclan_quantum,
    maximum_nclub_quantum,
)

__all__ = [
    "KCplexOracle",
    "MkpQubo",
    "OracleCosts",
    "ProgressCallback",
    "ProgressEvent",
    "QAMKPResult",
    "QMKPResult",
    "QTKPResult",
    "SubsetDecisionResult",
    "SubsetSearchResult",
    "GraphQubo",
    "build_clique_qubo",
    "build_independent_set_qubo",
    "build_mkp_qubo",
    "build_vertex_cover_qubo",
    "grover_maximum_subset",
    "grover_subset_decision",
    "maximum_clique_quantum",
    "maximum_independent_set_quantum",
    "maximum_nclan_quantum",
    "maximum_nclub_quantum",
    "cost_versus_runtime",
    "qamkp",
    "qmkp",
    "qtkp",
    "slack_width",
]
