"""The qTKP oracle: "is this subset a k-cplex of size >= T?".

This assembles the paper's four circuit blocks (Section III) over the
*complement* graph:

1. **graph encoding** (Fig. 6 box A) — one edge qubit per complement
   edge, activated by a Toffoli when both endpoints are selected;
2. **degree counting** (Fig. 6 box B, "control-a") — per-vertex popcount
   of its activated incident edge qubits into a counter register;
3. **degree comparison** (Fig. 10 box A, "control-c") — per-vertex flag
   ``d_i = [c_i <= k - 1]`` and the AND of all flags into the ``cplex``
   qubit (box B).  (The paper's prose says ``c_i < k - 1``; the k-cplex
   definition requires ``<=``, which is what we implement.);
4. **size determination** (Fig. 10 / Fig. 11) — popcount of the vertex
   qubits and the threshold check ``size >= T``, then the final Toffoli
   from ``(cplex, size_ok)`` onto the oracle qubit.

The complete phase oracle is ``U_check``, the marking Toffoli, then
``U_check^dag`` — so every ancilla returns to |0> and the net effect on
the vertex register is a phase flip on satisfying subsets.  Because
``U_check`` is X-family only, the full circuit (hundreds of qubits for
n = 10 graphs) is verified bit-exactly by
:func:`repro.quantum.classical.classical_simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs import Graph
from ..quantum import (
    QuantumCircuit,
    QubitAllocator,
    classical_simulate,
    compare_geq_const,
    compare_leq_const,
    counter_width,
    popcount,
)

__all__ = ["OracleCosts", "KCplexOracle"]

#: Section labels used for component-wise gate accounting (Table IV).
COMPONENT_ENCODE = "encode"
COMPONENT_DEGREE_COUNT = "degree_count"
COMPONENT_DEGREE_COMPARE = "degree_compare"
COMPONENT_SIZE_CHECK = "size_check"
COMPONENT_MARK = "mark"


@dataclass(frozen=True)
class OracleCosts:
    """Gate counts per oracle component for one full phase-oracle call.

    ``U_check`` and ``U_check^dag`` both contribute, so every component
    is counted twice except the single marking Toffoli.
    """

    encode: int
    degree_count: int
    degree_compare: int
    size_check: int
    mark: int

    @property
    def total(self) -> int:
        return (
            self.encode
            + self.degree_count
            + self.degree_compare
            + self.size_check
            + self.mark
        )

    def shares(self) -> dict[str, float]:
        """Fractional share of each *checking* component (Table IV rows).

        The paper's Table IV splits the oracle runtime across degree
        count, degree comparison, and size determination; encoding is
        part of state handling and the mark is a single gate, so shares
        are taken over the three checking components.
        """
        base = self.degree_count + self.degree_compare + self.size_check
        if base == 0:
            return {"degree_count": 0.0, "degree_compare": 0.0, "size_check": 0.0}
        return {
            "degree_count": self.degree_count / base,
            "degree_compare": self.degree_compare / base,
            "size_check": self.size_check / base,
        }


class KCplexOracle:
    """Oracle circuit for "subset is a k-cplex of ``complement`` with size >= T".

    Parameters
    ----------
    complement:
        The complement graph ``G-bar`` (build with ``graph.complement()``).
    k:
        The plex parameter; members may have at most ``k - 1``
        complement-neighbours inside the subset.
    threshold:
        Minimum subset size ``T`` (0 accepts any size).

    Notes
    -----
    The object exposes three consistent views of the same function:

    * :meth:`predicate` — direct classical evaluation from the graph
      (used by the phase-oracle Grover backend);
    * :meth:`classical_eval` — bit-level execution of the constructed
      ``U_check`` circuit (used to validate the circuit itself);
    * :meth:`phase_oracle_circuit` — the full compute/mark/uncompute
      gate list (used for gate accounting and tiny-n dense simulation).
    """

    def __init__(
        self,
        complement: Graph,
        k: int,
        threshold: int,
        adder: str = "compact",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if threshold > complement.num_vertices:
            raise ValueError(
                f"threshold {threshold} exceeds n={complement.num_vertices}"
            )
        if adder not in ("compact", "full_adder"):
            raise ValueError(f"adder must be 'compact' or 'full_adder', got {adder!r}")
        self.complement = complement
        self.k = k
        self.threshold = threshold
        self.adder = adder
        self._build()

    # ------------------------------------------------------------------
    # Circuit construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        n = self.complement.num_vertices
        qc = QuantumCircuit()
        vertex_reg = qc.add_register("v", n)
        edges = sorted(self.complement.edges)
        edge_reg = qc.add_register("e", len(edges))
        alloc = QubitAllocator(qc)

        # --- 1. graph encoding -----------------------------------------
        qc.set_label(COMPONENT_ENCODE)
        edge_qubit: dict[tuple[int, int], int] = {}
        for idx, (u, w) in enumerate(edges):
            eq = edge_reg[idx]
            edge_qubit[(u, w)] = eq
            qc.ccx(vertex_reg[u], vertex_reg[w], eq)

        # --- 2. degree counting ----------------------------------------
        qc.set_label(COMPONENT_DEGREE_COUNT)
        degree_counters: dict[int, list[int]] = {}
        for v in range(n):
            incident = [
                edge_qubit[(min(v, w), max(v, w))]
                for w in sorted(self.complement.neighbors(v))
            ]
            if incident:
                degree_counters[v] = popcount(qc, incident, alloc, adder=self.adder)

        # --- 3. degree comparison ---------------------------------------
        qc.set_label(COMPONENT_DEGREE_COMPARE)
        flags: list[int] = []
        for v in range(n):
            counter = degree_counters.get(v)
            if counter is None or self.k - 1 >= (1 << len(counter)):
                # Complement degree can never exceed k - 1: always passes.
                flag = alloc.take(1, f"d{v}")[0]
                qc.x(flag)
            else:
                flag = compare_leq_const(qc, counter, self.k - 1, alloc)
            flags.append(flag)
        cplex_qubit = alloc.take(1, "cplex")[0]
        if flags:
            qc.mcx(flags, cplex_qubit)
        else:
            qc.x(cplex_qubit)

        # --- 4. size determination ---------------------------------------
        qc.set_label(COMPONENT_SIZE_CHECK)
        if n:
            size_counter = popcount(qc, vertex_reg.qubits, alloc, adder=self.adder)
        else:
            size_counter = alloc.take(1, "size")
        if self.threshold == 0:
            size_ok = alloc.take(1, "size_ok")[0]
            qc.x(size_ok)
        else:
            size_ok = compare_geq_const(qc, size_counter, self.threshold, alloc)
        qc.set_label(None)

        self._u_check = qc
        self._vertex_reg = vertex_reg
        self._cplex_qubit = cplex_qubit
        self._size_ok_qubit = size_ok

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.complement.num_vertices

    @property
    def num_qubits(self) -> int:
        """Qubits of ``U_check`` (the phase oracle adds one for |O>)."""
        return self._u_check.num_qubits

    @property
    def u_check(self) -> QuantumCircuit:
        """The forward checking circuit (compute only, no mark)."""
        return self._u_check

    @property
    def cplex_qubit(self) -> int:
        return self._cplex_qubit

    @property
    def size_ok_qubit(self) -> int:
        return self._size_ok_qubit

    def predicate(self, mask: int) -> bool:
        """Direct evaluation: is the subset a k-cplex of size >= T?

        Works on the raw bitmask via :meth:`Graph.degree_in_mask` — no
        per-call ``frozenset`` materialisation.
        """
        if mask < 0 or mask >> self.complement.num_vertices:
            raise ValueError(
                f"bitmask {mask} out of range for n={self.complement.num_vertices}"
            )
        if mask.bit_count() < self.threshold:
            return False
        limit = self.k - 1
        remaining = mask
        while remaining:
            v = (remaining & -remaining).bit_length() - 1
            if self.complement.degree_in_mask(v, mask) > limit:
                return False
            remaining &= remaining - 1
        return True

    def classical_eval(self, mask: int) -> bool:
        """Run the actual ``U_check`` gate list on a basis state.

        Returns the AND of the ``cplex`` and ``size_ok`` flags — exactly
        the bit the marking Toffoli reads.
        """
        out = classical_simulate(self._u_check, mask)
        return bool(out >> self._cplex_qubit & 1) and bool(
            out >> self._size_ok_qubit & 1
        )

    def uncompute_is_clean(self, mask: int) -> bool:
        """Check ``U_check^dag U_check`` restores the input exactly."""
        forward = classical_simulate(self._u_check, mask)
        back = classical_simulate(self._u_check.inverse(), forward)
        return back == mask

    def phase_oracle_circuit(self) -> QuantumCircuit:
        """``U_check`` + marking Toffoli onto |O> + ``U_check^dag``.

        The oracle qubit is the last one; prepared in (|0>-|1>)/sqrt(2)
        it turns the Toffoli into the sign flip of Grover's step 2.
        """
        width = self._u_check.num_qubits + 1
        oracle_qubit = width - 1
        qc = QuantumCircuit(width)
        qc.mirror_registers(self._u_check)
        qc.extend(self._u_check)
        qc.set_label(COMPONENT_MARK)
        qc.ccx(self._cplex_qubit, self._size_ok_qubit, oracle_qubit)
        qc.set_label(None)
        qc.extend(self._u_check.inverse())
        return qc

    def component_costs(self) -> OracleCosts:
        """Gate counts per component for one full phase-oracle call."""
        forward = self._u_check.labelled_gate_counts()
        return OracleCosts(
            encode=2 * forward.get(COMPONENT_ENCODE, 0),
            degree_count=2 * forward.get(COMPONENT_DEGREE_COUNT, 0),
            degree_compare=2 * forward.get(COMPONENT_DEGREE_COMPARE, 0),
            size_check=2 * forward.get(COMPONENT_SIZE_CHECK, 0),
            mark=1,
        )
