"""qaMKP — Quantum Annealing for MKP (Algorithm 4) and its baselines.

One driver runs the paper's four solver configurations over the same
objective (Eq. 12):

* ``solver="qpu"``   — qaMKP on the simulated quantum annealer
  (annealing time ``delta_t_us`` per shot, shot count from the runtime
  budget: ``s = t / delta_t``);
* ``solver="hybrid"`` — haMKP on the hybrid portfolio (3 s minimum);
* ``solver="sa"``    — classical simulated annealing with a fixed small
  sweep count and budget-scaled shots (the paper fixes 2 sweeps);
* ``solver="milp"``  — Gurobi-style linearised MILP with a time limit.

Every run reports the paper's headline metric — the best objective cost
reached within the runtime budget — plus the decoded vertex set and a
repaired (guaranteed-feasible) k-plex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..annealing import (
    HybridSampler,
    SimulatedAnnealingSampler,
    SimulatedQPUSampler,
)
from ..graphs import Graph
from ..kplex import is_kplex, repair_to_kplex
from ..milp import solve_qubo_milp
from ..obs import NULL_TRACER
from ..resilience import (
    CASCADE_ORDER,
    FallbackCascade,
    FaultInjectingSampler,
    FaultPlan,
    RetryPolicy,
    validate_sampleset,
)
from .qubo_formulation import MkpQubo, build_mkp_qubo

__all__ = ["QAMKPResult", "qamkp", "cost_versus_runtime"]

_SOLVERS = ("qpu", "hybrid", "sa", "milp")


@dataclass(frozen=True)
class QAMKPResult:
    """Outcome of one annealing-style MKP solve.

    Attributes
    ----------
    cost:
        Best objective value found (lower is better; ``-|P*|`` with
        zero penalty at a feasible optimum with optimal slack).
    subset:
        The decoded vertex set of the best sample (may violate the
        k-plex constraint when the penalty was not driven to zero).
    repaired:
        ``subset`` greedily shrunk to a guaranteed k-plex.
    feasible:
        Whether the raw decoded subset is already a k-plex.
    runtime_us:
        The runtime budget charged (solver semantics documented above).
    solver:
        Which backend produced the result.
    info:
        Backend-specific metadata (chain stats, sweep counts, ...).
    """

    cost: float
    subset: frozenset[int]
    repaired: frozenset[int]
    feasible: bool
    runtime_us: float
    solver: str
    info: dict[str, object]

    @property
    def repaired_size(self) -> int:
        return len(self.repaired)


def _validated(sampleset, model: MkpQubo):
    """Quarantine malformed rows; an empty survivor set is an error."""
    clean, _report = validate_sampleset(sampleset, model.bqm)
    if not clean.samples:
        raise ValueError(
            "sampler returned no usable rows: every sample was quarantined"
        )
    return clean


def qamkp(
    graph: Graph,
    k: int,
    penalty: float = 2.0,
    runtime_us: float = 1000.0,
    delta_t_us: float = 1.0,
    solver: str = "qpu",
    qubo: MkpQubo | None = None,
    qpu: SimulatedQPUSampler | None = None,
    seed: int | None = None,
    sa_shot_cost_us: float = 100.0,
    retries: int = 0,
    fallback: bool = False,
    fault_plan: FaultPlan | str | None = None,
    sa_workers: int | None = None,
    kernel: str | None = None,
    warm: frozenset[int] | None = None,
    tracer=None,
) -> QAMKPResult:
    """Solve MKP through the QUBO objective with the chosen backend.

    Parameters
    ----------
    graph, k:
        The MKP instance.
    penalty:
        The penalty weight ``R > 1`` (paper default 2).
    runtime_us:
        Total runtime budget ``t``; for the QPU ``s = t / delta_t``
        shots are taken, for SA ``s`` shots of 2 sweeps, for MILP it is
        the solver time limit, and the hybrid floors it at 3 s.
    delta_t_us:
        Annealing time per shot (QPU only; Table V sweeps this).
    qubo:
        Reuse a pre-built :class:`MkpQubo` (skips rebuilding).
    qpu:
        Reuse a sampler (and embedding cache) across budgets.
    sa_shot_cost_us:
        Model wall-time of one classical SA shot (2 sweeps) on a CPU;
        SA takes ``runtime_us / sa_shot_cost_us`` shots.  QPU shots
        cost ``delta_t_us`` each — the hundredfold gap is exactly why
        the paper's SA curve only starts around 10^4 us.
    retries:
        QPU solves only: number of retries (so ``retries + 1``
        attempts) with exponential backoff and full jitter, all debited
        from the same ``runtime_us`` budget.
    fallback:
        QPU solves only: degrade through the sa -> tabu -> greedy
        cascade instead of raising when the (resilient) QPU path fails.
    fault_plan:
        Inject deterministic faults into the QPU sampler (a
        :class:`~repro.resilience.FaultPlan` or its string form, e.g.
        ``"transient=2,storm=0.5"``) — for testing the handlers.

    Any of ``retries``/``fallback``/``fault_plan`` routes the QPU solve
    through the resilience pipeline and attaches the structured
    :class:`~repro.resilience.ResilienceReport` as ``info["resilience"]``;
    otherwise failures raise through unchanged.  Every sampler-backed
    solve validates its sample set (quarantining malformed rows) before
    the decode/repair step.

    ``sa_workers`` (SA solves only) shards the SA replica batch over a
    process pool (see
    :meth:`repro.annealing.SimulatedAnnealingSampler.sample`); results
    stay byte-identical to single-process runs.

    ``kernel`` selects the annealing kernel backend
    (:mod:`repro.perf.kernels`) for the SA and hybrid solvers; every
    backend produces identical samplesets, so this is purely a speed
    knob.

    ``warm`` (SA solves only) seeds every read's initial state from a
    known vertex subset instead of uniform random bits: the subset's
    indicator is completed with its closed-form optimal slack
    (:meth:`~repro.core.qubo_formulation.MkpQubo.optimal_slack`), so
    the anneal starts at the subset's true objective value — the
    incremental solver's sampleset carry-over channel.  Warm runs
    consume a different RNG stream than cold ones (the uniform
    initial-state draw is skipped), so they are deterministic per seed
    but not byte-identical to cold solves; ``info["warm_start"]``
    records the seeding.

    ``tracer`` (optional :class:`repro.obs.Tracer`) opens one ``qamkp``
    root span; resilient solves nest the cascade/attempt spans under it
    and the span's claims are checked against ``info["resilience"]`` by
    the run ledger.  Annealing-backed solves additionally contribute
    ``anneal.sa`` / ``anneal.tabu`` spans whose sweep and flip counters
    the ledger reconciles exactly.
    """
    if solver not in _SOLVERS:
        raise ValueError(f"solver must be one of {_SOLVERS}, got {solver!r}")
    if runtime_us <= 0:
        raise ValueError(f"runtime_us must be > 0, got {runtime_us}")
    if fault_plan is not None and solver != "qpu":
        raise ValueError("fault_plan is only supported for solver='qpu'")
    if sa_workers is not None and solver != "sa":
        raise ValueError("sa_workers is only supported for solver='sa'")
    if warm is not None and solver != "sa":
        raise ValueError("warm is only supported for solver='sa'")

    tracer = tracer or NULL_TRACER
    with tracer.span(
        "qamkp", n=graph.num_vertices, k=k, solver=solver, runtime_us=runtime_us
    ) as span:
        result = _qamkp_body(
            graph, k, penalty, runtime_us, delta_t_us, solver, qubo, qpu,
            seed, sa_shot_cost_us, retries, fallback, fault_plan, sa_workers,
            kernel, warm, tracer,
        )
        tracer.add("qamkp_solves", 1)
        span.set("cost", result.cost)
        span.set("feasible", result.feasible)
        span.set("repaired_size", result.repaired_size)
        res = result.info.get("resilience")
        if isinstance(res, dict):
            # The cascade already claimed these on its own span; claiming
            # again here pins the same totals to what the *result* carries,
            # so a divergence between report and info surfaces as drift.
            span.claim("resilience_attempts", len(res["attempts"]))
            span.claim("resilience_faults", len(res["faults"]))
            span.claim("resilience_charged_us", res["charged_us"])
            span.claim("resilience_fallback_hops", len(res["fallbacks"]))
    return result


def _qamkp_body(
    graph, k, penalty, runtime_us, delta_t_us, solver, qubo, qpu,
    seed, sa_shot_cost_us, retries, fallback, fault_plan, sa_workers,
    kernel, warm, tracer,
) -> QAMKPResult:
    model = qubo or build_mkp_qubo(graph, k, penalty)
    info: dict[str, object] = {}

    if solver == "qpu":
        sampler = qpu or SimulatedQPUSampler()
        plan = (
            FaultPlan.parse(fault_plan)
            if isinstance(fault_plan, str)
            else fault_plan
        )
        if plan is not None and not plan.is_noop:
            sampler = FaultInjectingSampler(sampler, plan)
        if retries > 0 or fallback or isinstance(sampler, FaultInjectingSampler):
            cascade = FallbackCascade(
                sampler,
                backends=CASCADE_ORDER if fallback else ("qpu",),
                policy=RetryPolicy(max_attempts=retries + 1),
                sa_shot_cost_us=sa_shot_cost_us,
            )
            outcome = cascade.solve(
                model, graph, k,
                runtime_us=runtime_us,
                delta_t_us=delta_t_us,
                seed=seed,
                tracer=tracer,
            )
            cost = outcome.cost
            assignment = dict(outcome.assignment)
            if outcome.sampleset is not None:
                info.update(outcome.sampleset.info)
            info["backend_used"] = outcome.backend
            info["resilience"] = outcome.report.as_dict()
            info["total_runtime_us"] = outcome.report.charged_us
        else:
            shots = max(1, int(round(runtime_us / delta_t_us)))
            with tracer.span("qamkp.sample", backend="qpu", shots=shots):
                sampleset = sampler.sample(
                    model.bqm,
                    annealing_time_us=delta_t_us,
                    num_reads=shots,
                    seed=seed,
                )
            if "chain_break_fraction" in sampleset.info:
                tracer.observe(
                    "chain_break_fraction",
                    float(sampleset.info["chain_break_fraction"]),
                )
            sampleset = _validated(sampleset, model)
            best = sampleset.first
            cost = best.energy
            assignment = dict(best.assignment)
            info.update(sampleset.info)
    elif solver == "sa":
        sampler = SimulatedAnnealingSampler()
        shots = max(1, int(round(runtime_us / sa_shot_cost_us)))
        initial_states = None
        if warm is not None:
            # Start every read at the warm subset with its closed-form
            # optimal slack, expressed in the CSR variable order the
            # sampler anneals in.
            warm_assignment = model.optimal_slack(frozenset(warm))
            order = list(model.bqm.to_csr().order)
            row = np.array(
                [[warm_assignment[var] for var in order]], dtype=np.int8
            )
            initial_states = np.tile(row, (shots, 1))
        with tracer.span("qamkp.sample", backend="sa", shots=shots):
            sampleset = sampler.sample(
                model.bqm,
                num_reads=shots,
                num_sweeps=2,
                seed=seed,
                initial_states=initial_states,
                workers=sa_workers,
                tracer=tracer,
                kernel=kernel,
            )
        if warm is not None:
            info["warm_start"] = True
            info["warm_size"] = len(warm)
            tracer.add("warm_start_hits", 1)
        sampleset = _validated(sampleset, model)
        best = sampleset.first
        cost = best.energy
        assignment = dict(best.assignment)
        info.update(sampleset.info)
        info["total_runtime_us"] = runtime_us
    elif solver == "hybrid":
        # Portfolio stage (SA restarts + tabu + descent) ...
        sampler = HybridSampler()
        with tracer.span("qamkp.sample", backend="hybrid"):
            sampleset = sampler.sample(
                model.bqm, time_limit_us=runtime_us, seed=seed, tracer=tracer,
                kernel=kernel,
            )
        sampleset = _validated(sampleset, model)
        best = sampleset.first
        cost = best.energy
        assignment = dict(best.assignment)
        # ... plus the structure-aware stage the cloud hybrid's classical
        # workers perform: exploit the slack-block structure by solving
        # the collapsed problem exactly and completing slack in closed
        # form.  Keep whichever stage scored lower.
        from ..kplex import maximum_kplex

        structural_subset = maximum_kplex(graph, k).subset
        structural_assignment = model.optimal_slack(structural_subset)
        structural_cost = model.bqm.energy(structural_assignment)
        stage = "portfolio"
        if structural_cost < cost:
            cost = structural_cost
            assignment = structural_assignment
            stage = "structural"
        info.update(sampleset.info)
        info["winning_stage"] = stage
        runtime_us = float(info["total_runtime_us"])
    else:  # milp
        result = solve_qubo_milp(model.bqm, time_limit_us=runtime_us)
        if not result.found:
            # No incumbent within the limit: report the empty assignment.
            assignment = {v: 0 for v in model.bqm.variables}
            cost = model.bqm.energy(assignment)
            info["status"] = "no_solution"
        else:
            assignment = dict(result.assignment)
            cost = float(result.energy)
            info["status"] = result.status
        info["backend"] = "milp"

    subset = model.decode(assignment)
    feasible = is_kplex(graph, subset, k)
    repaired = subset if feasible else repair_to_kplex(graph, subset, k)
    return QAMKPResult(
        cost=float(cost),
        subset=subset,
        repaired=repaired,
        feasible=feasible,
        runtime_us=float(runtime_us),
        solver=solver,
        info=info,
    )


def cost_versus_runtime(
    graph: Graph,
    k: int,
    runtimes_us: list[float],
    solver: str = "qpu",
    penalty: float = 2.0,
    delta_t_us: float = 1.0,
    seed: int | None = None,
    qpu: SimulatedQPUSampler | None = None,
    tracer=None,
) -> list[QAMKPResult]:
    """The cost-vs-runtime curves of Figs. 13-14: one solve per budget.

    The QUBO (and, for the QPU, the embedding) is built once and shared
    so the sweep measures sampling budgets, not setup.  With a tracer,
    each budget's solve contributes its own ``qamkp`` root span.
    """
    model = build_mkp_qubo(graph, k, penalty)
    sampler = qpu or (SimulatedQPUSampler() if solver == "qpu" else None)
    out = []
    rng = np.random.default_rng(seed)
    for runtime in runtimes_us:
        out.append(
            qamkp(
                graph,
                k,
                penalty=penalty,
                runtime_us=runtime,
                delta_t_us=delta_t_us,
                solver=solver,
                qubo=model,
                qpu=sampler,
                seed=int(rng.integers(0, 2**31)) if seed is not None else None,
                tracer=tracer,
            )
        )
    return out
