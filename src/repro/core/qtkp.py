"""qTKP — Quantum k-Plex with Size T Search (Algorithm 2).

Pipeline, exactly as in the paper:

1. complement the input graph (k-plex -> k-cplex);
2. build the four-part oracle (:class:`repro.core.oracle.KCplexOracle`);
3. prepare the uniform superposition over all ``2^n`` subsets;
4. Grover-iterate ``floor(pi/4 * sqrt(2^n / M))`` times, where ``M`` is
   the number of solutions, estimated by quantum counting (Brassard et
   al.) or taken exactly;
5. measure the vertex register and verify the candidate classically
   (an O(n^2) check); retry on a bad collapse.

Cost accounting: every Grover round costs one phase-oracle call (gate
count from the constructed circuit) plus one diffusion operator; the
per-component split feeds Table IV and the classical-vs-quantum tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs import Graph
from ..grover import (
    PhaseOracleGrover,
    bbht_search,
    best_iterations,
    diffusion_gate_count,
    optimal_iterations,
)
from ..kplex import is_kplex
from ..obs import NULL_TRACER
from ..perf import MarkedSetCache
from ..quantum import quantum_count
from ..resilience.gate import (
    GateFaultInjector,
    GateVerification,
    execute_with_retries,
)
from .oracle import KCplexOracle, OracleCosts

__all__ = ["QTKPResult", "qtkp"]

#: Schedule restarts granted to BBHT when gate faults are injected —
#: noise can defeat a whole exponential schedule, so a noisy run gets a
#: bounded number of fresh ceilings before declaring infeasibility.
_BBHT_FAULT_RESTARTS = 2


@dataclass(frozen=True)
class QTKPResult:
    """Outcome of one qTKP run.

    Attributes
    ----------
    subset:
        A verified k-plex of size >= T, or the empty frozenset.
    found:
        Whether a solution was found and verified.
    iterations:
        Grover rounds per attempt.
    oracle_calls:
        Total oracle invocations across all attempts.
    num_marked:
        Solution count ``M`` used for the schedule.
    success_probability:
        Exact probability that one measurement succeeds.
    attempts:
        Measurement attempts consumed (1 = first try).
    gate_units:
        Total gates executed (oracle + diffusion, all iterations).
    oracle_costs:
        Per-component gate counts of a single oracle call.
    verification:
        Sample-verification ledger
        (:class:`repro.resilience.GateVerification`) — measurements
        taken, certificates passed, false positives rejected, transient
        retries, and whether the outcome is a known false negative.
        ``None`` unless a fault injector was active (the clean path
        stays byte-identical to the un-instrumented run).
    """

    subset: frozenset[int]
    found: bool
    iterations: int
    oracle_calls: int
    num_marked: int
    success_probability: float
    attempts: int
    gate_units: int
    oracle_costs: OracleCosts = field(repr=False, default=None)  # type: ignore[assignment]
    verification: GateVerification | None = field(
        default=None, repr=False, compare=False
    )


def qtkp(
    graph: Graph,
    k: int,
    threshold: int,
    counting: str = "exact",
    max_attempts: int = 8,
    rng: np.random.Generator | int | None = None,
    cache: MarkedSetCache | None = None,
    tracer=None,
    injector: GateFaultInjector | None = None,
    on_feasible=None,
    bbht_state: dict | None = None,
) -> QTKPResult:
    """Find a k-plex of size at least ``threshold``, or report failure.

    Parameters
    ----------
    graph, k, threshold:
        The decision instance (``1 <= threshold <= n``).
    counting:
        ``"exact"`` evaluates ``M`` from the oracle predicate (the
        idealised quantum counting limit); ``"quantum"`` runs the
        simulated quantum counting estimator, whose sampling error is
        the one real hardware would exhibit; ``"bbht"`` skips counting
        entirely and uses the Boyer-Brassard-Hoyer-Tapp exponential
        schedule (expected ``O(sqrt(N/M))`` oracle calls, ``M`` never
        learned — ``iterations`` is reported as 0 in this mode and
        ``success_probability`` is 1/0 for found/not found).
    max_attempts:
        Measure/verify retries before declaring failure.
    rng:
        Source of measurement randomness.
    cache:
        Optional :class:`repro.perf.MarkedSetCache`.  When given, the
        marked set comes from the bit-parallel table for ``(graph, k)``
        (one vectorized sweep, shared across thresholds) instead of a
        fresh ``2^n`` Python predicate scan; results are bit-identical
        either way.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Opens one ``qtkp`` span
        with a child span per Grover execution; oracle calls and gate
        units are charged at the leaves and the result's totals are
        claimed for the run-ledger drift check.  None = no-op tracer.
    injector:
        Optional :class:`repro.resilience.GateFaultInjector`.  Routes
        every Grover execution and measurement through the gate-stack
        fault model: transient simulator errors are retried (with
        ``gate.retry`` spans), depolarizing dampening is forwarded into
        the engine, readout bit-flips corrupt measured masks — and the
        self-verifying loop checks each sample against the classical
        certificate (``gate.verify`` spans) before trusting it, so an
        injected corruption costs a retry, never a wrong answer.  With
        ``None`` the clean path runs byte-identically to a build
        without this feature.
    on_feasible:
        Adaptive-ladder hook: called with every *measured* subset that
        classically verifies as a k-plex — including ones below the
        threshold, which the probe itself rejects.  The measurement
        already happened and the certificate is an O(n^2) classical
        check, so the ladder learns a lower bound at zero quantum cost.
        Consumes no randomness: the RNG stream is identical with the
        hook on or off.
    bbht_state:
        Adaptive-ladder hook for ``counting="bbht"``: a mutable dict
        whose ``"ceiling"`` entry seeds the BBHT schedule
        (``initial_ceiling``) and receives the schedule's final ceiling
        afterwards, so consecutive threshold probes carry the
        exponential schedule's state instead of re-growing it from 1.
    """
    if not (1 <= threshold <= max(graph.num_vertices, 1)):
        raise ValueError(
            f"threshold must be in [1, n={graph.num_vertices}], got {threshold}"
        )
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if counting not in ("exact", "quantum", "bbht"):
        raise ValueError(
            f"counting must be 'exact', 'quantum', or 'bbht', got {counting!r}"
        )
    rng = np.random.default_rng(rng)
    tracer = tracer or NULL_TRACER
    if injector is not None and injector.plan.is_noop:
        injector = None
    with tracer.span(
        "qtkp", n=graph.num_vertices, k=k, threshold=threshold, counting=counting
    ) as span:
        result = _qtkp_body(
            graph, k, threshold, counting, max_attempts, rng, cache, tracer,
            injector, on_feasible, bbht_state,
        )
        tracer.add("qtkp_calls", 1)
        span.set("found", result.found)
        span.set("size", len(result.subset))
        span.claim("oracle_calls", result.oracle_calls)
        span.claim("gate_units", result.gate_units)
        span.claim("qtkp_attempts", result.attempts)
        if result.verification is not None:
            v = result.verification
            span.claim("gate_retries", v.transient_retries + v.bbht_restarts)
            if counting != "bbht":
                span.claim("gate_verifications", v.measurements)
    return result


def _qtkp_body(
    graph: Graph,
    k: int,
    threshold: int,
    counting: str,
    max_attempts: int,
    rng: np.random.Generator,
    cache: MarkedSetCache | None,
    tracer,
    injector: GateFaultInjector | None,
    on_feasible=None,
    bbht_state: dict | None = None,
) -> QTKPResult:
    n = graph.num_vertices
    complement = graph.complement()
    oracle = KCplexOracle(complement, k, threshold)
    if cache is not None:
        engine = PhaseOracleGrover(n, cache.marked(graph, k, threshold))
    else:
        engine = PhaseOracleGrover(n, oracle.predicate)
    exact_m = engine.num_marked

    stats = GateVerification() if injector is not None else None
    fault_log_start = len(injector.fault_log) if injector is not None else 0

    if counting == "quantum" and exact_m:
        estimate = quantum_count(n, exact_m, rng=rng).rounded
        num_marked = max(1, min(estimate, 1 << n))
    else:
        num_marked = exact_m

    per_call = oracle.component_costs()
    per_round = per_call.total + diffusion_gate_count(n)

    if counting == "bbht":
        observe = None
        if on_feasible is not None:
            def observe(mask: int) -> None:
                subset = graph.bitmask_to_subset(mask)
                if subset and is_kplex(graph, subset, k):
                    on_feasible(subset)
        initial_ceiling = (
            float(bbht_state.get("ceiling", 1.0)) if bbht_state is not None else 1.0
        )
        with tracer.span("qtkp.bbht"):
            if injector is None:
                result = bbht_search(
                    engine, rng=rng, initial_ceiling=initial_ceiling,
                    observe=observe,
                )
            else:
                result = bbht_search(
                    engine,
                    rng=rng,
                    restarts=_BBHT_FAULT_RESTARTS,
                    execute=lambda eng, iters: execute_with_retries(
                        eng, iters, injector, stats, tracer, max_attempts
                    ),
                    corrupt=lambda mask: injector.corrupt_measurement(mask, n),
                    tracer=tracer,
                    initial_ceiling=initial_ceiling,
                    observe=observe,
                )
                stats.measurements = result.rounds
                stats.verified = int(result.found)
                stats.false_positives = result.rejected
                stats.bbht_restarts = result.restarts_used
                stats.false_negative = not result.found and exact_m > 0
                stats.faults = list(injector.fault_log[fault_log_start:])
            if bbht_state is not None:
                bbht_state["ceiling"] = result.final_ceiling
            tracer.add("oracle_calls", result.oracle_calls)
            tracer.add("gate_units", result.oracle_calls * per_round)
            tracer.add("qtkp_attempts", result.rounds)
        subset = (
            graph.bitmask_to_subset(result.mask) if result.found else frozenset()
        )
        return QTKPResult(
            subset=subset,
            found=result.found,
            iterations=0,
            oracle_calls=result.oracle_calls,
            num_marked=exact_m,
            success_probability=1.0 if result.found else 0.0,
            attempts=result.rounds,
            gate_units=result.oracle_calls * per_round,
            oracle_costs=per_call,
            verification=stats,
        )

    if exact_m == 0:
        # The hardware would iterate on the M estimate, measure, and fail
        # verification; charge one full attempt at the smallest schedule.
        iterations = optimal_iterations(1 << n, 1)
        with tracer.span("qtkp.attempt", attempt=1, empty_marked_set=True):
            tracer.add("oracle_calls", iterations)
            tracer.add("gate_units", iterations * per_round)
            tracer.add("qtkp_attempts", 1)
        return QTKPResult(
            subset=frozenset(),
            found=False,
            iterations=iterations,
            oracle_calls=iterations,
            num_marked=0,
            success_probability=0.0,
            attempts=1,
            gate_units=iterations * per_round,
            oracle_costs=per_call,
            verification=stats,
        )

    iterations = best_iterations(1 << n, num_marked)
    if injector is None:
        run = engine.run(iterations)
    else:
        run = execute_with_retries(
            engine, iterations, injector, stats, tracer, max_attempts
        )
    oracle_calls = 0
    for attempt in range(1, max_attempts + 1):
        oracle_calls += iterations
        with tracer.span("qtkp.attempt", attempt=attempt) as attempt_span:
            tracer.add("oracle_calls", iterations)
            tracer.add("gate_units", iterations * per_round)
            tracer.add("qtkp_attempts", 1)
            mask = run.measure_once(rng)
            if injector is None:
                subset = graph.bitmask_to_subset(mask)
                if on_feasible is None:
                    verified = (
                        len(subset) >= threshold and is_kplex(graph, subset, k)
                    )
                else:
                    # Adaptive ladder: certify the measurement as a
                    # k-plex regardless of size — a below-threshold
                    # collapse still teaches the ladder a lower bound.
                    # Pure classical work, no RNG: the measurement
                    # stream is untouched.
                    feasible = bool(subset) and is_kplex(graph, subset, k)
                    if feasible:
                        on_feasible(subset)
                    verified = feasible and len(subset) >= threshold
            else:
                # Self-verifying sampling: the measured candidate is
                # checked against the classical certificate before it
                # is trusted, so injected readout/depolarizing noise
                # costs a retry, never a wrong answer.
                with tracer.span("gate.verify", attempt=attempt) as vspan:
                    tracer.add("gate_verifications", 1)
                    mask = injector.corrupt_measurement(mask, n)
                    subset = graph.bitmask_to_subset(mask)
                    if on_feasible is None:
                        verified = (
                            len(subset) >= threshold
                            and is_kplex(graph, subset, k)
                        )
                    else:
                        feasible = bool(subset) and is_kplex(graph, subset, k)
                        if feasible:
                            on_feasible(subset)
                        verified = feasible and len(subset) >= threshold
                    stats.measurements += 1
                    if verified:
                        stats.verified += 1
                    else:
                        stats.false_positives += 1
                    vspan.set("verified", verified)
            attempt_span.set("verified", verified)
        if verified:
            if stats is not None:
                stats.faults = list(injector.fault_log[fault_log_start:])
            return QTKPResult(
                subset=subset,
                found=True,
                iterations=iterations,
                oracle_calls=oracle_calls,
                num_marked=num_marked,
                success_probability=run.success_probability,
                attempts=attempt,
                gate_units=oracle_calls * per_round,
                oracle_costs=per_call,
                verification=stats,
            )
    if stats is not None:
        stats.false_negative = exact_m > 0
        stats.faults = list(injector.fault_log[fault_log_start:])
    return QTKPResult(
        subset=frozenset(),
        found=False,
        iterations=iterations,
        oracle_calls=oracle_calls,
        num_marked=num_marked,
        success_probability=run.success_probability,
        attempts=max_attempts,
        gate_units=oracle_calls * per_round,
        oracle_costs=per_call,
        verification=stats,
    )
