"""qTKP — Quantum k-Plex with Size T Search (Algorithm 2).

Pipeline, exactly as in the paper:

1. complement the input graph (k-plex -> k-cplex);
2. build the four-part oracle (:class:`repro.core.oracle.KCplexOracle`);
3. prepare the uniform superposition over all ``2^n`` subsets;
4. Grover-iterate ``floor(pi/4 * sqrt(2^n / M))`` times, where ``M`` is
   the number of solutions, estimated by quantum counting (Brassard et
   al.) or taken exactly;
5. measure the vertex register and verify the candidate classically
   (an O(n^2) check); retry on a bad collapse.

Cost accounting: every Grover round costs one phase-oracle call (gate
count from the constructed circuit) plus one diffusion operator; the
per-component split feeds Table IV and the classical-vs-quantum tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs import Graph
from ..grover import (
    PhaseOracleGrover,
    bbht_search,
    best_iterations,
    diffusion_gate_count,
    optimal_iterations,
)
from ..kplex import is_kplex
from ..obs import NULL_TRACER
from ..perf import MarkedSetCache
from ..quantum import quantum_count
from .oracle import KCplexOracle, OracleCosts

__all__ = ["QTKPResult", "qtkp"]


@dataclass(frozen=True)
class QTKPResult:
    """Outcome of one qTKP run.

    Attributes
    ----------
    subset:
        A verified k-plex of size >= T, or the empty frozenset.
    found:
        Whether a solution was found and verified.
    iterations:
        Grover rounds per attempt.
    oracle_calls:
        Total oracle invocations across all attempts.
    num_marked:
        Solution count ``M`` used for the schedule.
    success_probability:
        Exact probability that one measurement succeeds.
    attempts:
        Measurement attempts consumed (1 = first try).
    gate_units:
        Total gates executed (oracle + diffusion, all iterations).
    oracle_costs:
        Per-component gate counts of a single oracle call.
    """

    subset: frozenset[int]
    found: bool
    iterations: int
    oracle_calls: int
    num_marked: int
    success_probability: float
    attempts: int
    gate_units: int
    oracle_costs: OracleCosts = field(repr=False, default=None)  # type: ignore[assignment]


def qtkp(
    graph: Graph,
    k: int,
    threshold: int,
    counting: str = "exact",
    max_attempts: int = 8,
    rng: np.random.Generator | None = None,
    cache: MarkedSetCache | None = None,
    tracer=None,
) -> QTKPResult:
    """Find a k-plex of size at least ``threshold``, or report failure.

    Parameters
    ----------
    graph, k, threshold:
        The decision instance (``1 <= threshold <= n``).
    counting:
        ``"exact"`` evaluates ``M`` from the oracle predicate (the
        idealised quantum counting limit); ``"quantum"`` runs the
        simulated quantum counting estimator, whose sampling error is
        the one real hardware would exhibit; ``"bbht"`` skips counting
        entirely and uses the Boyer-Brassard-Hoyer-Tapp exponential
        schedule (expected ``O(sqrt(N/M))`` oracle calls, ``M`` never
        learned — ``iterations`` is reported as 0 in this mode and
        ``success_probability`` is 1/0 for found/not found).
    max_attempts:
        Measure/verify retries before declaring failure.
    rng:
        Source of measurement randomness.
    cache:
        Optional :class:`repro.perf.MarkedSetCache`.  When given, the
        marked set comes from the bit-parallel table for ``(graph, k)``
        (one vectorized sweep, shared across thresholds) instead of a
        fresh ``2^n`` Python predicate scan; results are bit-identical
        either way.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Opens one ``qtkp`` span
        with a child span per Grover execution; oracle calls and gate
        units are charged at the leaves and the result's totals are
        claimed for the run-ledger drift check.  None = no-op tracer.
    """
    if not (1 <= threshold <= max(graph.num_vertices, 1)):
        raise ValueError(
            f"threshold must be in [1, n={graph.num_vertices}], got {threshold}"
        )
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if counting not in ("exact", "quantum", "bbht"):
        raise ValueError(
            f"counting must be 'exact', 'quantum', or 'bbht', got {counting!r}"
        )
    rng = rng or np.random.default_rng()
    tracer = tracer or NULL_TRACER
    with tracer.span(
        "qtkp", n=graph.num_vertices, k=k, threshold=threshold, counting=counting
    ) as span:
        result = _qtkp_body(graph, k, threshold, counting, max_attempts, rng, cache, tracer)
        tracer.add("qtkp_calls", 1)
        span.set("found", result.found)
        span.set("size", len(result.subset))
        span.claim("oracle_calls", result.oracle_calls)
        span.claim("gate_units", result.gate_units)
        span.claim("qtkp_attempts", result.attempts)
    return result


def _qtkp_body(
    graph: Graph,
    k: int,
    threshold: int,
    counting: str,
    max_attempts: int,
    rng: np.random.Generator,
    cache: MarkedSetCache | None,
    tracer,
) -> QTKPResult:
    n = graph.num_vertices
    complement = graph.complement()
    oracle = KCplexOracle(complement, k, threshold)
    if cache is not None:
        engine = PhaseOracleGrover(n, cache.marked(graph, k, threshold))
    else:
        engine = PhaseOracleGrover(n, oracle.predicate)
    exact_m = engine.num_marked

    if counting == "quantum" and exact_m:
        estimate = quantum_count(n, exact_m, rng=rng).rounded
        num_marked = max(1, min(estimate, 1 << n))
    else:
        num_marked = exact_m

    per_call = oracle.component_costs()
    per_round = per_call.total + diffusion_gate_count(n)

    if counting == "bbht":
        with tracer.span("qtkp.bbht"):
            result = bbht_search(engine, rng=rng)
            tracer.add("oracle_calls", result.oracle_calls)
            tracer.add("gate_units", result.oracle_calls * per_round)
            tracer.add("qtkp_attempts", result.rounds)
        subset = (
            graph.bitmask_to_subset(result.mask) if result.found else frozenset()
        )
        return QTKPResult(
            subset=subset,
            found=result.found,
            iterations=0,
            oracle_calls=result.oracle_calls,
            num_marked=exact_m,
            success_probability=1.0 if result.found else 0.0,
            attempts=result.rounds,
            gate_units=result.oracle_calls * per_round,
            oracle_costs=per_call,
        )

    if exact_m == 0:
        # The hardware would iterate on the M estimate, measure, and fail
        # verification; charge one full attempt at the smallest schedule.
        iterations = optimal_iterations(1 << n, 1)
        with tracer.span("qtkp.attempt", attempt=1, empty_marked_set=True):
            tracer.add("oracle_calls", iterations)
            tracer.add("gate_units", iterations * per_round)
            tracer.add("qtkp_attempts", 1)
        return QTKPResult(
            subset=frozenset(),
            found=False,
            iterations=iterations,
            oracle_calls=iterations,
            num_marked=0,
            success_probability=0.0,
            attempts=1,
            gate_units=iterations * per_round,
            oracle_costs=per_call,
        )

    iterations = best_iterations(1 << n, num_marked)
    run = engine.run(iterations)
    oracle_calls = 0
    for attempt in range(1, max_attempts + 1):
        oracle_calls += iterations
        with tracer.span("qtkp.attempt", attempt=attempt) as attempt_span:
            tracer.add("oracle_calls", iterations)
            tracer.add("gate_units", iterations * per_round)
            tracer.add("qtkp_attempts", 1)
            mask = run.measure_once(rng)
            subset = graph.bitmask_to_subset(mask)
            verified = len(subset) >= threshold and is_kplex(graph, subset, k)
            attempt_span.set("verified", verified)
        if verified:
            return QTKPResult(
                subset=subset,
                found=True,
                iterations=iterations,
                oracle_calls=oracle_calls,
                num_marked=num_marked,
                success_probability=run.success_probability,
                attempts=attempt,
                gate_units=oracle_calls * per_round,
                oracle_costs=per_call,
            )
    return QTKPResult(
        subset=frozenset(),
        found=False,
        iterations=iterations,
        oracle_calls=oracle_calls,
        num_marked=num_marked,
        success_probability=run.success_probability,
        attempts=max_attempts,
        gate_units=oracle_calls * per_round,
        oracle_costs=per_call,
    )
