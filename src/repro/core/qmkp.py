"""qMKP — Quantum Maximum k-Plex Search (Algorithm 3).

Binary search on the size threshold ``T``, calling qTKP as the decision
procedure.  The paper highlights two properties this module surfaces
explicitly:

* **progression** — every successful qTKP probe yields a feasible
  k-plex; the run log records (cumulative cost, size) pairs, so the
  "first feasible result within the first O(1/log n) of the runtime, at
  least half the optimum" claim is measurable;
* **orthogonality** — graph reduction (core-truss co-pruning) and the
  polynomial upper bounds can shrink the instance / search interval
  before the quantum search runs; both hooks are built in.

On top of the paper's algorithm sits the gate-stack resilience layer
(PR 5): a qMKP run can carry a :class:`~repro.resilience.DeadlineBudget`
of gate units shared across all probes (degrading to the classical
branch search when it expires), journal every completed probe into a
write-ahead checkpoint (so a killed run resumes **bit-identically** via
``qmkp(..., resume=PATH)``), and route every Grover execution through a
:class:`~repro.resilience.GateFaultInjector` whose corrupted samples
are caught by qTKP's self-verifying measurement loop.  All of it is
opt-in: with every knob at its default the run is byte-identical to the
pre-resilience implementation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..graphs import Graph, co_prune
from ..kplex import best_upper_bound, is_kplex, maximum_kplex
from ..obs import NULL_TRACER
from ..perf import MarkedSetCache
from ..resilience.checkpoint import (
    CheckpointCorruptError,
    CheckpointJournal,
    CheckpointMismatchError,
    restore_rng_state,
    rng_state,
    validate_header,
)
from ..resilience.deadline import DeadlineBudget
from ..resilience.gate import GateFaultInjector, GateFaultPlan, GateVerification
from .oracle import OracleCosts
from .qtkp import QTKPResult, qtkp

__all__ = ["ProgressCallback", "ProgressEvent", "QMKPResult", "qmkp"]

#: Anytime-streaming hook: called with each new incumbent's
#: :class:`ProgressEvent`, the (verified) vertex set itself in
#: working-graph ids, and whether the incumbent was replayed from a
#: checkpoint journal — see the ``on_progress`` parameter of :func:`qmkp`.
ProgressCallback = Callable[["ProgressEvent", frozenset[int], bool], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One feasible solution surfacing during the binary search."""

    cumulative_oracle_calls: int
    cumulative_gate_units: int
    size: int
    threshold: int


@dataclass(frozen=True)
class QMKPResult:
    """Outcome of a qMKP run.

    ``progression`` lists feasible solutions in discovery order; its
    first entry is the paper's "first result".  The resilience fields
    keep their defaults on a clean, feature-off run: ``degraded_to``
    names the classical fallback that finished the search when the
    gate-unit deadline expired, ``resumed_probes`` counts probes
    replayed from a checkpoint journal, and ``verification`` is the
    aggregated sample-verification ledger of a fault-injected run.
    """

    subset: frozenset[int]
    oracle_calls: int
    gate_units: int
    qtkp_calls: int
    progression: list[ProgressEvent] = field(default_factory=list)
    probes: list[QTKPResult] = field(default_factory=list, repr=False)
    oracle_costs_total: dict[str, int] = field(default_factory=dict)
    degraded_to: str | None = None
    deadline_expired: bool = False
    resumed_probes: int = 0
    skipped_thresholds: int = 0
    verification: dict[str, object] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def size(self) -> int:
        return len(self.subset)

    @property
    def first_result(self) -> ProgressEvent | None:
        return self.progression[0] if self.progression else None

    def first_result_fraction(self) -> float | None:
        """Fraction of total gate units spent when the first result appeared."""
        if not self.progression or self.gate_units == 0:
            return None
        return self.progression[0].cumulative_gate_units / self.gate_units


def qmkp(
    graph: Graph,
    k: int,
    counting: str = "exact",
    reduce_first: bool = False,
    use_upper_bound: bool = True,
    rng: np.random.Generator | int | None = None,
    use_cache: bool = True,
    cache: MarkedSetCache | None = None,
    workers: int | None = None,
    ladder: str = "binary",
    warm: frozenset[int] | None = None,
    kernel: str | None = None,
    tracer=None,
    deadline: DeadlineBudget | float | None = None,
    checkpoint: str | Path | None = None,
    resume: str | Path | None = None,
    gate_faults: GateFaultPlan | str | None = None,
    on_progress: ProgressCallback | None = None,
) -> QMKPResult:
    """Find a maximum k-plex by binary search over qTKP.

    Parameters
    ----------
    graph, k:
        The MKP instance.
    counting:
        Forwarded to :func:`repro.core.qtkp.qtkp`.
    reduce_first:
        Apply core-truss co-pruning (with a trivial lower bound of
        ``k``: any ``k`` vertices form a k-plex) before searching — the
        paper's trick for fitting larger graphs on the simulator.
    use_upper_bound:
        Initialise the binary search's upper end from the polynomial
        bounds instead of ``n``.
    rng:
        One seeded :class:`numpy.random.Generator` (or an int seed)
        threaded end-to-end through every qTKP probe, BBHT round, and
        Grover measurement — no layer below creates its own generator,
        so a fixed seed pins the whole run.
    use_cache:
        Share one bit-parallel marked-set sweep across all threshold
        probes (:class:`repro.perf.MarkedSetCache`) instead of
        re-scanning ``2^n`` masks per probe.  Results are bit-identical
        with or without the cache; ``False`` forces the seed path (for
        benchmarking and equivalence tests).
    cache:
        An existing cache to reuse across qMKP runs; implies
        ``use_cache``.  When None and ``use_cache`` is set, a run-local
        cache is created.
    workers:
        Process-pool width for the bit-parallel sweep's chunks (only
        worth it for large ``n``); forwarded to the run-local cache.
    ladder:
        Threshold-ladder strategy.  ``"binary"`` (default) is the
        paper's Algorithm 3 — plain binary search, byte-identical to
        the seed implementation.  ``"adaptive"`` is the
        incumbent-tracking ladder: every *measured* subset that
        classically certifies as a k-plex (even below its probe's
        threshold) becomes a global incumbent that retargets the lower
        bound, consecutive ``counting="bbht"`` probes carry the BBHT
        schedule ceiling instead of re-growing it, and thresholds whose
        marked-count the :class:`~repro.perf.MarkedSetCache` table
        already proves to be zero are skipped without spending a single
        oracle call.  Both ladders provably return an optimum of the
        same size; the adaptive one never uses more qTKP probes or
        Grover iterations.
    warm:
        A known-feasible k-plex of ``graph`` (input-graph vertex ids)
        used as the search's initial incumbent: it is classically
        re-verified, recorded as the first progression entry, and lifts
        the binary search's lower end to ``len(warm) + 1`` — the
        incremental solver's carry-over channel, where the previous
        step's optimum (possibly shrunk by one endpoint) prunes the
        bottom of the ladder.  **Not** byte-identity preserving: the
        threshold sequence changes, so only the returned optimum size is
        guaranteed to match a cold run.  Incompatible with
        ``reduce_first`` (the seed is expressed in unreduced ids).
    kernel:
        Kernel-backend name for the run-local marked-set sweep
        (:mod:`repro.perf.kernels`); ignored when an explicit ``cache``
        is supplied (the cache carries its own).  All backends produce
        byte-identical results.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Opens a ``qmkp`` root span
        with one ``qtkp`` child per binary-search probe, routes the
        marked-set cache's hit/miss accounting through the same span
        tree, and claims the result's totals (oracle calls, gate units,
        probe count, cache deltas) so
        :meth:`repro.obs.RunLedger.verify` can prove them drift-free.
        None = no-op tracer.
    deadline:
        Gate-unit budget shared across all probes (a
        :class:`~repro.resilience.DeadlineBudget` or a plain float).
        Checked between probes; on expiry the remaining interval is
        finished by the classical :func:`repro.kplex.maximum_kplex`
        branch search and the result records ``degraded_to``.
    checkpoint:
        Path of a write-ahead probe journal
        (:class:`~repro.resilience.CheckpointJournal`): every completed
        probe — threshold, verified witness, cost accounting, RNG state
        — is fsynced before the search advances, so a SIGKILL loses at
        most the probe in flight.
    resume:
        Path of an existing journal to resume from.  Completed probes
        are replayed (witnesses re-verified classically), the RNG state
        is restored, and the search continues live — bit-identical to
        the uninterrupted run.  Pass the same path as ``checkpoint`` to
        keep extending the journal across kills.
    gate_faults:
        A :class:`~repro.resilience.GateFaultPlan` (or its string form,
        e.g. ``"transient=2,readout=0.5,seed=7"``) injected into every
        probe's Grover executions and measurements; the self-verifying
        loop in qTKP rejects corrupted samples against the classical
        certificate and the aggregated accounting lands on
        ``result.verification``.
    on_progress:
        Anytime-streaming hook, called as ``on_progress(event, subset,
        replayed)`` the moment each new incumbent lands — qMKP is
        progressive (every successful probe yields a feasible k-plex),
        and this is how the service layer pushes verified incumbents to
        callers before the threshold ladder finishes.  Fires for
        journal-replayed probes too, with ``replayed=True`` (a resumed
        run re-announces its incumbents, so a reconnecting caller sees
        the current best, never a silent regression).  ``subset`` is in
        *working-graph* vertex ids: identical to the input graph's ids
        unless ``reduce_first`` pruned it.  The clean path is untouched
        when None (the default).
    """
    if ladder not in ("binary", "adaptive"):
        raise ValueError(
            f"ladder must be 'binary' or 'adaptive', got {ladder!r}"
        )
    if warm is not None and reduce_first:
        raise ValueError(
            "warm seeds cannot be combined with reduce_first: the seed "
            "is in input-graph ids, the reduced search space is not"
        )
    rng = np.random.default_rng(rng)
    tracer = tracer or NULL_TRACER
    if cache is None and use_cache:
        cache = MarkedSetCache(workers=workers, kernel=kernel)
    if isinstance(gate_faults, str):
        gate_faults = GateFaultPlan.parse(gate_faults)
    injector = (
        GateFaultInjector(gate_faults)
        if gate_faults is not None and not gate_faults.is_noop
        else None
    )
    if deadline is not None and not isinstance(deadline, DeadlineBudget):
        deadline = DeadlineBudget(deadline)
    with tracer.span(
        "qmkp", n=graph.num_vertices, k=k, counting=counting
    ) as span:
        # Route the cache's accounting through this run's tracer for the
        # duration (restored after — the cache may be shared across runs).
        cache_tracer_prev = None
        stats_before = None
        if cache is not None:
            cache_tracer_prev = cache.tracer
            cache.tracer = tracer
            stats_before = cache.stats()
        try:
            result = _qmkp_body(
                graph, k, counting, reduce_first, use_upper_bound, rng,
                cache, tracer, injector, deadline, checkpoint, resume,
                on_progress, ladder, warm,
            )
        finally:
            if cache is not None:
                cache.tracer = cache_tracer_prev
        span.set("size", result.size)
        span.claim("oracle_calls", result.oracle_calls)
        span.claim("gate_units", result.gate_units)
        span.claim("qtkp_calls", result.qtkp_calls)
        if result.resumed_probes:
            span.set("resumed_probes", result.resumed_probes)
        if result.skipped_thresholds:
            span.claim("qmkp_skipped_thresholds", result.skipped_thresholds)
        if result.degraded_to:
            span.set("degraded_to", result.degraded_to)
        if stats_before is not None:
            stats_after = cache.stats()
            span.claim(
                "marked_cache_hits", stats_after["hits"] - stats_before["hits"]
            )
            span.claim(
                "marked_cache_misses",
                stats_after["misses"] - stats_before["misses"],
            )
            if getattr(cache, "shared", None) is not None:
                # Shared-tier activity reconciles like every other claim;
                # the keys exist only when the tier is configured, so
                # no-shared ledgers are byte-identical to before.
                for shared_key in ("shared_hits", "shared_misses", "shared_publishes"):
                    span.claim(
                        f"cache_{shared_key}",
                        stats_after[shared_key] - stats_before[shared_key],
                    )
    return result


def _journal_header(
    graph: Graph,
    working: Graph,
    k: int,
    counting: str,
    reduce_first: bool,
    use_upper_bound: bool,
    rng: np.random.Generator,
    ladder: str,
    warm: frozenset[int] | None,
) -> dict[str, object]:
    """The instance-binding fields a checkpoint must match to be replayed."""
    return {
        "graph": graph.fingerprint(),
        "working": working.fingerprint(),
        "n": working.num_vertices,
        "k": k,
        "counting": counting,
        "reduce_first": reduce_first,
        "use_upper_bound": use_upper_bound,
        "rng": type(rng.bit_generator).__name__,
        "ladder": ladder,
        "warm": sorted(warm) if warm is not None else None,
    }


def _probe_record(
    probe: QTKPResult, rng: np.random.Generator
) -> dict[str, object]:
    """One completed probe as a JSON-safe WAL record (RNG state *after*)."""
    record: dict[str, object] = {
        "threshold": None,  # filled by caller (the binary-search mid)
        "found": probe.found,
        "subset": sorted(probe.subset),
        "iterations": probe.iterations,
        "oracle_calls": probe.oracle_calls,
        "num_marked": probe.num_marked,
        "success_probability": probe.success_probability,
        "attempts": probe.attempts,
        "gate_units": probe.gate_units,
        "oracle_costs": {
            "encode": probe.oracle_costs.encode,
            "degree_count": probe.oracle_costs.degree_count,
            "degree_compare": probe.oracle_costs.degree_compare,
            "size_check": probe.oracle_costs.size_check,
            "mark": probe.oracle_costs.mark,
        },
        "rng_state": rng_state(rng),
    }
    if probe.verification is not None:
        record["verification"] = probe.verification.as_dict()
    return record


def _probe_from_record(record: dict[str, object]) -> QTKPResult:
    """Rebuild the :class:`QTKPResult` a journal record describes."""
    verification = None
    if record.get("verification") is not None:
        v = dict(record["verification"])
        verification = GateVerification(
            measurements=int(v.get("measurements", 0)),
            verified=int(v.get("verified", 0)),
            false_positives=int(v.get("false_positives", 0)),
            false_negative=bool(v.get("false_negative", False)),
            transient_retries=int(v.get("transient_retries", 0)),
            bbht_restarts=int(v.get("bbht_restarts", 0)),
            faults=[tuple(f) for f in v.get("faults", [])],
        )
    return QTKPResult(
        subset=frozenset(int(v) for v in record["subset"]),
        found=bool(record["found"]),
        iterations=int(record["iterations"]),
        oracle_calls=int(record["oracle_calls"]),
        num_marked=int(record["num_marked"]),
        success_probability=float(record["success_probability"]),
        attempts=int(record["attempts"]),
        gate_units=int(record["gate_units"]),
        oracle_costs=OracleCosts(**{
            key: int(value)
            for key, value in record["oracle_costs"].items()
        }),
        verification=verification,
    )


def _qmkp_body(
    graph: Graph,
    k: int,
    counting: str,
    reduce_first: bool,
    use_upper_bound: bool,
    rng: np.random.Generator,
    cache: MarkedSetCache | None,
    tracer,
    injector: GateFaultInjector | None,
    deadline: DeadlineBudget | None,
    checkpoint: str | Path | None,
    resume: str | Path | None,
    on_progress: ProgressCallback | None = None,
    ladder: str = "binary",
    warm: frozenset[int] | None = None,
) -> QMKPResult:
    working = graph
    translate = None
    if reduce_first and graph.num_vertices:
        reduction = co_prune(graph, k, lower_bound=min(k, graph.num_vertices))
        if reduction.graph.num_vertices:
            working = reduction.graph
            translate = reduction
    n = working.num_vertices
    if n == 0:
        return QMKPResult(frozenset(), 0, 0, 0)

    adaptive = ladder == "adaptive"
    lo = 1
    hi = best_upper_bound(working, k) if use_upper_bound else n
    hi = max(lo, hi)
    best: frozenset[int] = frozenset()
    probes: list[QTKPResult] = []
    progression: list[ProgressEvent] = []
    oracle_calls = 0
    gate_units = 0
    skipped = 0
    totals = {"encode": 0, "degree_count": 0, "degree_compare": 0, "size_check": 0}
    # Adaptive-ladder state: every measured subset a probe classically
    # certifies as a k-plex lands here (via qtkp's on_feasible hook), and
    # consecutive BBHT probes hand their schedule ceiling through this
    # mutable cell instead of re-growing from 1.
    observed: list[frozenset[int]] = []
    bbht_state = {"ceiling": 1.0} if adaptive and counting == "bbht" else None

    def note_best(subset: frozenset[int], mid: int, replayed: bool) -> None:
        """Record a new incumbent: progression entry, tracer, callback."""
        nonlocal best
        best = subset
        progression.append(
            ProgressEvent(oracle_calls, gate_units, len(best), mid)
        )
        tracer.set(
            "progression",
            [
                [e.cumulative_oracle_calls, e.cumulative_gate_units,
                 e.size, e.threshold]
                for e in progression
            ],
        )
        if on_progress is not None:
            on_progress(progression[-1], best, replayed)

    def apply_probe(probe: QTKPResult, mid: int, replayed: bool = False) -> None:
        """The binary-search update rule, shared by replay and live probes."""
        nonlocal lo, hi, oracle_calls, gate_units
        probes.append(probe)
        oracle_calls += probe.oracle_calls
        gate_units += probe.gate_units
        _accumulate(totals, probe.oracle_costs, probe.oracle_calls)
        if probe.found:
            if len(probe.subset) > len(best):
                note_best(probe.subset, mid, replayed)
            lo = max(mid, len(probe.subset)) + 1
        else:
            hi = mid - 1

    def apply_incumbent(
        subset: frozenset[int], mid: int, replayed: bool = False
    ) -> None:
        """Adaptive update: a certified k-plex observed among a probe's
        measurements retargets the lower bound, whatever threshold it
        surfaced under — a feasible k-plex of size ``s`` proves the
        optimum is at least ``s``, so no threshold <= ``s`` needs
        deciding."""
        nonlocal lo
        if len(subset) > len(best):
            note_best(subset, mid, replayed)
        lo = max(lo, len(subset) + 1)

    if warm is not None:
        warm = frozenset(int(v) for v in warm)
        if warm and not is_kplex(working, warm, k):
            raise ValueError(
                f"warm seed of size {len(warm)} failed classical "
                f"k-plex verification (k={k})"
            )
        if warm:
            # A verified incumbent before any probe: the paper's
            # progressive guarantee now starts at the seed's size, and
            # every threshold <= len(warm) is already decided.
            note_best(warm, len(warm), False)
            lo = max(lo, len(warm) + 1)
            tracer.add("warm_start_hits", 1)

    header = _journal_header(
        graph, working, k, counting, reduce_first, use_upper_bound, rng,
        ladder, warm,
    )

    # ------------------------------------------------------------------
    # Resume: replay the journal's completed probes through the same
    # update rule, re-verify every witness, restore the RNG state.
    # ------------------------------------------------------------------
    resumed = 0
    if resume is not None:
        loaded_header, records = CheckpointJournal.load(resume)
        validate_header(header, loaded_header, str(resume))
        if records:
            with tracer.span(
                "checkpoint.replay", path=str(resume), probes=len(records)
            ) as rspan:
                replay_oracle = 0
                replay_gate = 0
                replay_attempts = 0
                replay_probes = 0
                replay_skips = 0
                for record in records:
                    if lo > hi:
                        raise CheckpointCorruptError(
                            f"{resume}: journal holds more probes than the "
                            "search interval admits"
                        )
                    mid = (lo + hi) // 2
                    if int(record["threshold"]) != mid:
                        raise CheckpointMismatchError(
                            f"{resume}: journal probe at threshold "
                            f"{record['threshold']} but the search "
                            f"sequence expects {mid}"
                        )
                    if record.get("skipped"):
                        # A cache-proven-empty threshold: no probe ran,
                        # no randomness was consumed — just the interval
                        # update, exactly as the live skip applied it.
                        replay_skips += 1
                        skipped += 1
                        hi = mid - 1
                        continue
                    probe = _probe_from_record(record)
                    if probe.found and not (
                        len(probe.subset) >= mid
                        and is_kplex(working, probe.subset, k)
                    ):
                        raise CheckpointCorruptError(
                            f"{resume}: journal witness for threshold {mid} "
                            "failed classical re-verification"
                        )
                    replay_oracle += probe.oracle_calls
                    replay_gate += probe.gate_units
                    replay_attempts += probe.attempts
                    replay_probes += 1
                    apply_probe(probe, mid, replayed=True)
                    incumbent_rec = record.get("incumbent")
                    if incumbent_rec is not None:
                        subset = frozenset(int(v) for v in incumbent_rec)
                        if not is_kplex(working, subset, k):
                            raise CheckpointCorruptError(
                                f"{resume}: journal incumbent for threshold "
                                f"{mid} failed classical re-verification"
                            )
                        apply_incumbent(subset, mid, replayed=True)
                    ceiling_rec = record.get("bbht_ceiling")
                    if ceiling_rec is not None and bbht_state is not None:
                        bbht_state["ceiling"] = float(ceiling_rec)
                    if deadline is not None:
                        deadline.charge(probe.gate_units)
                # Replayed work is charged inside this span so the qmkp
                # root's claims still reconcile — the ledger proves the
                # journal's totals and the result object agree.
                tracer.add("oracle_calls", replay_oracle)
                tracer.add("gate_units", replay_gate)
                tracer.add("qtkp_calls", replay_probes)
                tracer.add("qtkp_attempts", replay_attempts)
                rspan.claim("oracle_calls", replay_oracle)
                rspan.claim("gate_units", replay_gate)
                rspan.claim("qtkp_calls", replay_probes)
                rspan.claim("qtkp_attempts", replay_attempts)
                if replay_skips:
                    tracer.add("qmkp_skipped_thresholds", replay_skips)
                    rspan.claim("qmkp_skipped_thresholds", replay_skips)
            restore_rng_state(rng, records[-1]["rng_state"])
            resumed = len(records)
            if adaptive and cache is not None and replay_probes:
                # The uninterrupted run's first probe built the
                # marked-set table; replay doesn't probe, so rebuild it
                # before the live loop consults ``peek`` — otherwise a
                # threshold the reference run skipped would be
                # re-probed, breaking resume bit-identity.
                cache.table(working, k)

    journal = None
    if checkpoint is not None:
        keep = resume is not None and Path(resume) == Path(checkpoint)
        journal = CheckpointJournal(checkpoint, header, resume=keep)

    degraded_to: str | None = None
    deadline_expired = False
    try:
        while lo <= hi:
            if deadline is not None and deadline.expired:
                deadline_expired = True
                break
            mid = (lo + hi) // 2
            if adaptive and cache is not None:
                count = cache.peek(working, k, mid)
                if count == 0:
                    # The cached marked-set table (already paid for by an
                    # earlier probe) proves no k-plex of size >= mid
                    # exists, so the probe would come back not-found;
                    # apply its interval update for free.  No randomness
                    # is consumed, so resumed runs stay bit-identical.
                    skipped += 1
                    tracer.add("qmkp_skipped_thresholds", 1)
                    hi = mid - 1
                    if journal is not None:
                        journal.append_probe({
                            "skipped": True,
                            "threshold": mid,
                            "rng_state": rng_state(rng),
                        })
                    continue
            probe = qtkp(
                working, k, mid, counting=counting, rng=rng, cache=cache,
                tracer=tracer, injector=injector,
                on_feasible=observed.append if adaptive else None,
                bbht_state=bbht_state,
            )
            if deadline is not None:
                deadline.charge(probe.gate_units)
            apply_probe(probe, mid)
            incumbent: frozenset[int] | None = None
            if adaptive and observed:
                incumbent = max(observed, key=len)
                observed.clear()
                apply_incumbent(incumbent, mid)
            if journal is not None:
                record = _probe_record(probe, rng)
                record["threshold"] = mid
                if incumbent is not None:
                    record["incumbent"] = sorted(incumbent)
                if bbht_state is not None:
                    record["bbht_ceiling"] = bbht_state["ceiling"]
                journal.append_probe(record)
    finally:
        if journal is not None:
            journal.close()

    if deadline_expired:
        # Documented degradation: the gate budget is spent, so the
        # remaining interval is decided by the exact classical branch
        # search — never a silent "best so far".
        with tracer.span(
            "qmkp.fallback", reason="deadline", lo=lo, hi=hi,
            warm_incumbent=len(best),
        ):
            tracer.add("deadline_fallbacks", 1)
            # Seed the branch search with the surviving incumbent — a
            # verified k-plex of ``working`` — so resumed or mutation
            # jobs degrade with their bound intact instead of
            # re-deriving it from the greedy seed.
            classical = maximum_kplex(
                working, k, initial_incumbent=best if best else None
            ).subset
        degraded_to = "kplex.branch_search"
        if len(classical) > len(best):
            best = classical

    verification = None
    if injector is not None:
        agg = GateVerification()
        for probe in probes:
            if probe.verification is not None:
                agg.merge(probe.verification)
        verification = agg.as_dict()
        verification["executions"] = injector.executions

    if translate is not None:
        best = translate.translate_back(best)
    return QMKPResult(
        subset=best,
        oracle_calls=oracle_calls,
        gate_units=gate_units,
        qtkp_calls=len(probes),
        progression=progression,
        probes=probes,
        oracle_costs_total=totals,
        degraded_to=degraded_to,
        deadline_expired=deadline_expired,
        resumed_probes=resumed,
        skipped_thresholds=skipped,
        verification=verification,
    )


def _accumulate(totals: dict[str, int], costs: OracleCosts, calls: int) -> None:
    totals["encode"] += costs.encode * calls
    totals["degree_count"] += costs.degree_count * calls
    totals["degree_compare"] += costs.degree_compare * calls
    totals["size_check"] += costs.size_check * calls
