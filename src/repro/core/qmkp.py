"""qMKP — Quantum Maximum k-Plex Search (Algorithm 3).

Binary search on the size threshold ``T``, calling qTKP as the decision
procedure.  The paper highlights two properties this module surfaces
explicitly:

* **progression** — every successful qTKP probe yields a feasible
  k-plex; the run log records (cumulative cost, size) pairs, so the
  "first feasible result within the first O(1/log n) of the runtime, at
  least half the optimum" claim is measurable;
* **orthogonality** — graph reduction (core-truss co-pruning) and the
  polynomial upper bounds can shrink the instance / search interval
  before the quantum search runs; both hooks are built in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs import Graph, co_prune
from ..kplex import best_upper_bound
from ..obs import NULL_TRACER
from ..perf import MarkedSetCache
from .oracle import OracleCosts
from .qtkp import QTKPResult, qtkp

__all__ = ["ProgressEvent", "QMKPResult", "qmkp"]


@dataclass(frozen=True)
class ProgressEvent:
    """One feasible solution surfacing during the binary search."""

    cumulative_oracle_calls: int
    cumulative_gate_units: int
    size: int
    threshold: int


@dataclass(frozen=True)
class QMKPResult:
    """Outcome of a qMKP run.

    ``progression`` lists feasible solutions in discovery order; its
    first entry is the paper's "first result".
    """

    subset: frozenset[int]
    oracle_calls: int
    gate_units: int
    qtkp_calls: int
    progression: list[ProgressEvent] = field(default_factory=list)
    probes: list[QTKPResult] = field(default_factory=list, repr=False)
    oracle_costs_total: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.subset)

    @property
    def first_result(self) -> ProgressEvent | None:
        return self.progression[0] if self.progression else None

    def first_result_fraction(self) -> float | None:
        """Fraction of total gate units spent when the first result appeared."""
        if not self.progression or self.gate_units == 0:
            return None
        return self.progression[0].cumulative_gate_units / self.gate_units


def qmkp(
    graph: Graph,
    k: int,
    counting: str = "exact",
    reduce_first: bool = False,
    use_upper_bound: bool = True,
    rng: np.random.Generator | None = None,
    use_cache: bool = True,
    cache: MarkedSetCache | None = None,
    workers: int | None = None,
    tracer=None,
) -> QMKPResult:
    """Find a maximum k-plex by binary search over qTKP.

    Parameters
    ----------
    graph, k:
        The MKP instance.
    counting:
        Forwarded to :func:`repro.core.qtkp.qtkp`.
    reduce_first:
        Apply core-truss co-pruning (with a trivial lower bound of
        ``k``: any ``k`` vertices form a k-plex) before searching — the
        paper's trick for fitting larger graphs on the simulator.
    use_upper_bound:
        Initialise the binary search's upper end from the polynomial
        bounds instead of ``n``.
    use_cache:
        Share one bit-parallel marked-set sweep across all threshold
        probes (:class:`repro.perf.MarkedSetCache`) instead of
        re-scanning ``2^n`` masks per probe.  Results are bit-identical
        with or without the cache; ``False`` forces the seed path (for
        benchmarking and equivalence tests).
    cache:
        An existing cache to reuse across qMKP runs; implies
        ``use_cache``.  When None and ``use_cache`` is set, a run-local
        cache is created.
    workers:
        Process-pool width for the bit-parallel sweep's chunks (only
        worth it for large ``n``); forwarded to the run-local cache.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Opens a ``qmkp`` root span
        with one ``qtkp`` child per binary-search probe, routes the
        marked-set cache's hit/miss accounting through the same span
        tree, and claims the result's totals (oracle calls, gate units,
        probe count, cache deltas) so
        :meth:`repro.obs.RunLedger.verify` can prove them drift-free.
        None = no-op tracer.
    """
    rng = rng or np.random.default_rng()
    tracer = tracer or NULL_TRACER
    if cache is None and use_cache:
        cache = MarkedSetCache(workers=workers)
    with tracer.span(
        "qmkp", n=graph.num_vertices, k=k, counting=counting
    ) as span:
        # Route the cache's accounting through this run's tracer for the
        # duration (restored after — the cache may be shared across runs).
        cache_tracer_prev = None
        stats_before = None
        if cache is not None:
            cache_tracer_prev = cache.tracer
            cache.tracer = tracer
            stats_before = cache.stats()
        try:
            result = _qmkp_body(
                graph, k, counting, reduce_first, use_upper_bound, rng, cache, tracer
            )
        finally:
            if cache is not None:
                cache.tracer = cache_tracer_prev
        span.set("size", result.size)
        span.claim("oracle_calls", result.oracle_calls)
        span.claim("gate_units", result.gate_units)
        span.claim("qtkp_calls", result.qtkp_calls)
        if stats_before is not None:
            stats_after = cache.stats()
            span.claim(
                "marked_cache_hits", stats_after["hits"] - stats_before["hits"]
            )
            span.claim(
                "marked_cache_misses",
                stats_after["misses"] - stats_before["misses"],
            )
    return result


def _qmkp_body(
    graph: Graph,
    k: int,
    counting: str,
    reduce_first: bool,
    use_upper_bound: bool,
    rng: np.random.Generator,
    cache: MarkedSetCache | None,
    tracer,
) -> QMKPResult:
    working = graph
    translate = None
    if reduce_first and graph.num_vertices:
        reduction = co_prune(graph, k, lower_bound=min(k, graph.num_vertices))
        if reduction.graph.num_vertices:
            working = reduction.graph
            translate = reduction
    n = working.num_vertices
    if n == 0:
        return QMKPResult(frozenset(), 0, 0, 0)

    lo = 1
    hi = best_upper_bound(working, k) if use_upper_bound else n
    hi = max(lo, hi)
    best: frozenset[int] = frozenset()
    probes: list[QTKPResult] = []
    progression: list[ProgressEvent] = []
    oracle_calls = 0
    gate_units = 0
    totals = {"encode": 0, "degree_count": 0, "degree_compare": 0, "size_check": 0}

    while lo <= hi:
        mid = (lo + hi) // 2
        probe = qtkp(
            working, k, mid, counting=counting, rng=rng, cache=cache, tracer=tracer
        )
        probes.append(probe)
        oracle_calls += probe.oracle_calls
        gate_units += probe.gate_units
        _accumulate(totals, probe.oracle_costs, probe.oracle_calls)
        if probe.found:
            if len(probe.subset) > len(best):
                best = probe.subset
                progression.append(
                    ProgressEvent(oracle_calls, gate_units, len(best), mid)
                )
                tracer.set(
                    "progression",
                    [
                        [e.cumulative_oracle_calls, e.cumulative_gate_units,
                         e.size, e.threshold]
                        for e in progression
                    ],
                )
            lo = max(mid, len(probe.subset)) + 1
        else:
            hi = mid - 1

    if translate is not None:
        best = translate.translate_back(best)
    return QMKPResult(
        subset=best,
        oracle_calls=oracle_calls,
        gate_units=gate_units,
        qtkp_calls=len(probes),
        progression=progression,
        probes=probes,
        oracle_costs_total=totals,
    )


def _accumulate(totals: dict[str, int], costs: OracleCosts, calls: int) -> None:
    totals["encode"] += costs.encode * calls
    totals["degree_count"] += costs.degree_count * calls
    totals["degree_compare"] += costs.degree_compare * calls
    totals["size_check"] += costs.size_check * calls
