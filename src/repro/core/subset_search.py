"""Generic Grover-based maximum-subset search.

The paper's adaptability section argues the qTKP/qMKP machinery carries
over to other cohesive-subgraph models (n-clan, n-club, ...).  This
module realises that claim as a reusable engine: give it any subset
property and it runs the same pipeline as qMKP — Grover decision
search over the ``2^n`` subsets at a size threshold, wrapped in binary
search, with oracle-call accounting and progressive results.

The property is supplied as a black-box predicate (the abstract oracle
of Grover's framework).  For the k-plex family the library also builds
the *explicit circuit* oracle (:class:`repro.core.oracle.KCplexOracle`);
for distance-based models the circuit construction is future work the
paper sketches (reusing the count/compare blocks for path lengths), so
their oracle-call counts here are the model costs of the same search
structure.

Convenience wrappers cover the models the paper names: maximum clique,
n-clan, n-club, plus maximum independent set (the complement dual).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..graphs import Graph
from ..grover import PhaseOracleGrover, best_iterations, diffusion_gate_count
from ..kplex import is_nclan, is_nclub
from ..obs import NULL_TRACER
from ..perf import PredicateMaskCache

__all__ = [
    "SubsetDecisionResult",
    "SubsetSearchResult",
    "grover_subset_decision",
    "grover_maximum_subset",
    "maximum_clique_quantum",
    "maximum_independent_set_quantum",
    "maximum_nclan_quantum",
    "maximum_nclub_quantum",
]

SubsetPredicate = Callable[[frozenset[int]], bool]

_MAX_QUBITS = 20


@dataclass(frozen=True)
class SubsetDecisionResult:
    """Outcome of one Grover decision probe at a size threshold."""

    subset: frozenset[int]
    found: bool
    threshold: int
    iterations: int
    oracle_calls: int
    num_marked: int
    success_probability: float


@dataclass(frozen=True)
class SubsetSearchResult:
    """Outcome of the binary-search optimisation."""

    subset: frozenset[int]
    oracle_calls: int
    probes: list[SubsetDecisionResult] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.subset)


def grover_subset_decision(
    graph: Graph,
    predicate: SubsetPredicate,
    threshold: int,
    rng: np.random.Generator | None = None,
    max_attempts: int = 8,
    cache: PredicateMaskCache | None = None,
    tracer=None,
) -> SubsetDecisionResult:
    """Find a subset with ``predicate`` true and size >= ``threshold``.

    The same structure as qTKP with the k-plex oracle swapped for a
    black-box predicate: uniform superposition, phase oracle, optimal
    iteration schedule, measure, verify classically, retry.  With a
    :class:`repro.perf.PredicateMaskCache` the marked set is a size
    slice of one precomputed sweep instead of a fresh ``2^n`` scan.
    ``tracer`` records one ``subset.decision`` span claiming the
    probe's ``oracle_calls``.
    """
    n = graph.num_vertices
    if n > _MAX_QUBITS:
        raise ValueError(
            f"subset search supports n <= {_MAX_QUBITS}, got {n}"
        )
    if not (1 <= threshold <= max(n, 1)):
        raise ValueError(f"threshold must be in [1, {n}], got {threshold}")
    rng = rng or np.random.default_rng()
    tracer = tracer or NULL_TRACER

    def marked(mask: int) -> bool:
        subset = graph.bitmask_to_subset(mask)
        return len(subset) >= threshold and predicate(subset)

    with tracer.span("subset.decision", n=n, threshold=threshold) as span:
        if cache is not None:
            engine = PhaseOracleGrover(n, cache.marked(threshold))
        else:
            engine = PhaseOracleGrover(n, marked)
        m = engine.num_marked
        span.set("num_marked", m)
        if m == 0:
            iterations = best_iterations(1 << n, 1)
            tracer.add("oracle_calls", iterations)
            span.set("found", False)
            span.claim("oracle_calls", iterations)
            return SubsetDecisionResult(
                frozenset(), False, threshold, iterations, iterations, 0, 0.0
            )
        iterations = best_iterations(1 << n, m)
        run = engine.run(iterations)
        oracle_calls = 0
        for _attempt in range(max_attempts):
            oracle_calls += iterations
            tracer.add("oracle_calls", iterations)
            mask = run.measure_once(rng)
            subset = graph.bitmask_to_subset(mask)
            if len(subset) >= threshold and predicate(subset):
                span.set("found", True)
                span.claim("oracle_calls", oracle_calls)
                return SubsetDecisionResult(
                    subset, True, threshold, iterations, oracle_calls,
                    m, run.success_probability,
                )
        span.set("found", False)
        span.claim("oracle_calls", oracle_calls)
        return SubsetDecisionResult(
            frozenset(), False, threshold, iterations, oracle_calls,
            m, run.success_probability,
        )


def grover_maximum_subset(
    graph: Graph,
    predicate: SubsetPredicate,
    rng: np.random.Generator | None = None,
    upper_bound: int | None = None,
    use_cache: bool = True,
    tracer=None,
) -> SubsetSearchResult:
    """Binary search for the largest subset satisfying ``predicate``.

    The qMKP structure applied to an arbitrary property: each probe is
    a Grover decision at the midpoint threshold, successes raise the
    lower end, failures lower the upper end.  Because the predicate is
    threshold-independent, it is evaluated over the ``2^n`` subsets
    once (``use_cache``, the default) and every probe reuses the
    size-partitioned result; ``False`` re-scans per probe (seed path).
    ``tracer`` opens one ``subset_search`` root span over the per-probe
    ``subset.decision`` spans; its ``oracle_calls`` claim is the
    result's total.
    """
    rng = rng or np.random.default_rng()
    tracer = tracer or NULL_TRACER
    n = graph.num_vertices
    if n == 0:
        return SubsetSearchResult(frozenset(), 0)
    with tracer.span("subset_search", n=n) as span:
        cache = PredicateMaskCache(graph, predicate) if use_cache else None
        lo, hi = 1, upper_bound if upper_bound is not None else n
        hi = max(1, min(hi, n))
        best: frozenset[int] = frozenset()
        probes: list[SubsetDecisionResult] = []
        oracle_calls = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            probe = grover_subset_decision(
                graph, predicate, mid, rng=rng, cache=cache, tracer=tracer
            )
            probes.append(probe)
            oracle_calls += probe.oracle_calls
            if probe.found:
                if len(probe.subset) > len(best):
                    best = probe.subset
                lo = max(mid, len(probe.subset)) + 1
            else:
                hi = mid - 1
        span.set("size", len(best))
        span.set("probes", len(probes))
        span.claim("oracle_calls", oracle_calls)
    return SubsetSearchResult(best, oracle_calls, probes)


# ---------------------------------------------------------------------------
# Model wrappers (the relaxations the paper names)
# ---------------------------------------------------------------------------

def maximum_clique_quantum(
    graph: Graph, rng: np.random.Generator | None = None
) -> SubsetSearchResult:
    """Maximum clique via the generic engine (a 1-plex)."""

    def is_clique(subset: frozenset[int]) -> bool:
        members = sorted(subset)
        return all(
            graph.has_edge(u, v)
            for i, u in enumerate(members)
            for v in members[i + 1:]
        )

    return grover_maximum_subset(graph, is_clique, rng=rng)


def maximum_independent_set_quantum(
    graph: Graph, rng: np.random.Generator | None = None
) -> SubsetSearchResult:
    """Maximum independent set (clique of the complement)."""

    def independent(subset: frozenset[int]) -> bool:
        members = sorted(subset)
        return not any(
            graph.has_edge(u, v)
            for i, u in enumerate(members)
            for v in members[i + 1:]
        )

    return grover_maximum_subset(graph, independent, rng=rng)


def maximum_nclan_quantum(
    graph: Graph, n: int, rng: np.random.Generator | None = None
) -> SubsetSearchResult:
    """Maximum n-clan via the generic engine."""
    return grover_maximum_subset(
        graph, lambda s: is_nclan(graph, s, n), rng=rng
    )


def maximum_nclub_quantum(
    graph: Graph, n: int, rng: np.random.Generator | None = None
) -> SubsetSearchResult:
    """Maximum n-club via the generic engine."""
    return grover_maximum_subset(
        graph, lambda s: is_nclub(graph, s, n), rng=rng
    )
