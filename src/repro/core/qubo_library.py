"""QUBO formulations for problems adjacent to MKP.

The paper situates qaMKP among QUBO-based quantum annealing algorithms
for graph problems (maximum clique: Chapuis et al.; related database
reformulations: Trummer & Koch).  This module collects the standard
formulations so the annealing stack doubles as a small graph-QUBO
toolbox, with the same decode/repair conventions as
:class:`repro.core.qubo_formulation.MkpQubo`:

* **maximum clique** — ``F = -sum x_i + R * sum_{(u,v) not in E} x_u x_v``
  (every selected non-edge is penalised; a 1-plex needs no slack);
* **maximum independent set** — the clique objective on the complement:
  ``F = -sum x_i + R * sum_{(u,v) in E} x_u x_v``;
* **minimum vertex cover** — ``F = sum x_i + R * sum_{(u,v) in E}
  (1 - x_u)(1 - x_v)``: uncovered edges are penalised.

For ``R > 1`` each objective's global minimum encodes the exact
optimum (same penalty argument as the paper's Section IV: fixing one
violation frees at most one unit of objective).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..annealing import BinaryQuadraticModel
from ..graphs import Graph

__all__ = [
    "GraphQubo",
    "build_clique_qubo",
    "build_independent_set_qubo",
    "build_vertex_cover_qubo",
]


@dataclass(frozen=True)
class GraphQubo:
    """A graph-problem QUBO plus decoding metadata."""

    bqm: BinaryQuadraticModel
    graph: Graph
    problem: str
    penalty: float

    def decode(self, assignment: dict[object, int]) -> frozenset[int]:
        """Selected vertex set of a sampler assignment."""
        return frozenset(
            v for v in self.graph.vertices if assignment.get(f"x{v}", 0)
        )

    def is_feasible(self, subset: frozenset[int]) -> bool:
        """Whether ``subset`` satisfies the problem's constraint."""
        members = sorted(subset)
        if self.problem == "clique":
            return all(
                self.graph.has_edge(u, v)
                for i, u in enumerate(members)
                for v in members[i + 1:]
            )
        if self.problem == "independent_set":
            return not any(
                self.graph.has_edge(u, v)
                for i, u in enumerate(members)
                for v in members[i + 1:]
            )
        # vertex cover: every edge touched
        return all(u in subset or v in subset for u, v in self.graph.edges)


def _check_penalty(penalty: float) -> None:
    if penalty <= 1.0:
        raise ValueError(f"penalty must be > 1 for correctness, got {penalty}")


def build_clique_qubo(graph: Graph, penalty: float = 2.0) -> GraphQubo:
    """Maximum clique: penalise selected non-adjacent pairs."""
    _check_penalty(penalty)
    bqm = BinaryQuadraticModel()
    for v in graph.vertices:
        bqm.add_linear(f"x{v}", -1.0)
    comp = graph.complement()
    for u, v in sorted(comp.edges):
        bqm.add_quadratic(f"x{u}", f"x{v}", penalty)
    return GraphQubo(bqm, graph, "clique", penalty)


def build_independent_set_qubo(graph: Graph, penalty: float = 2.0) -> GraphQubo:
    """Maximum independent set: penalise selected adjacent pairs."""
    _check_penalty(penalty)
    bqm = BinaryQuadraticModel()
    for v in graph.vertices:
        bqm.add_linear(f"x{v}", -1.0)
    for u, v in sorted(graph.edges):
        bqm.add_quadratic(f"x{u}", f"x{v}", penalty)
    return GraphQubo(bqm, graph, "independent_set", penalty)


def build_vertex_cover_qubo(graph: Graph, penalty: float = 2.0) -> GraphQubo:
    """Minimum vertex cover: penalise uncovered edges.

    ``(1 - x_u)(1 - x_v) = 1 - x_u - x_v + x_u x_v`` expands into the
    offset/linear/quadratic terms below.
    """
    _check_penalty(penalty)
    bqm = BinaryQuadraticModel()
    for v in graph.vertices:
        bqm.add_linear(f"x{v}", 1.0)
    for u, v in sorted(graph.edges):
        bqm.add_offset(penalty)
        bqm.add_linear(f"x{u}", -penalty)
        bqm.add_linear(f"x{v}", -penalty)
        bqm.add_quadratic(f"x{u}", f"x{v}", penalty)
    return GraphQubo(bqm, graph, "vertex_cover", penalty)
