"""MKP -> QUBO reformulation (Section IV of the paper).

Working on the complement graph, select ``x_i = 1`` for chosen vertices
and maximise ``sum x_i`` subject to every chosen vertex having at most
``k - 1`` chosen complement-neighbours.  The inequality is folded into
a quadratic penalty via the paper's three steps:

1. big-M relaxation so it binds only when ``x_i = 1``:
   ``sum_{j in N(i)} x_j <= k - 1 + M_i (1 - x_i)`` with the paper's
   per-vertex choice ``M_i = deg(v_i) - k + 1``;
2. slack variables turn it into an equality:
   ``sum_j x_j + s_i - (k - 1) - M_i (1 - x_i) = 0``
   (note ``(k-1) + M_i = deg(v_i)``, so the penalty simplifies to
   ``(sum_j x_j + s_i + M_i x_i - deg(v_i))^2``);
3. binary expansion ``s_i = sum_r 2^r s_{i,r}`` with width
   ``L_i = ceil(log2(max(deg(v_i), k-1) + 1))``.  The paper prints
   ``ceil(log2 max(deg, k-1))``, which under-allocates exactly when the
   maximum slack is a power of two and would spuriously penalise
   feasible solutions; we default to the corrected width and keep the
   printed formula behind ``paper_faithful_width=True`` for the
   ablation benchmark.

Vertices with ``deg(v_i) <= k - 1`` can never violate the constraint,
so their penalty (and slack block) is omitted entirely.

The final objective (Eq. 12):

    F = -sum_i x_i + R * sum_i p_i,      R > 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..annealing import BinaryQuadraticModel
from ..graphs import Graph

__all__ = ["MkpQubo", "build_mkp_qubo", "slack_width"]


def slack_width(max_slack: int, paper_faithful: bool = False) -> int:
    """Bits for a slack variable covering ``[0, max_slack]``.

    ``paper_faithful`` reproduces the paper's printed
    ``ceil(log2 max_slack)`` (under-allocating at exact powers of two).
    """
    if max_slack <= 0:
        return 0
    if paper_faithful:
        return max(1, math.ceil(math.log2(max_slack)))
    return max(1, math.ceil(math.log2(max_slack + 1)))


@dataclass(frozen=True)
class MkpQubo:
    """A built MKP QUBO plus its decoding metadata.

    Attributes
    ----------
    bqm:
        The objective ``F`` as a binary quadratic model.  Minimising it
        solves the MKP: the optimum has energy ``-|P*|``.
    graph:
        The *original* graph (not the complement).
    k, penalty:
        Problem parameter and penalty weight ``R``.
    slack_bits:
        ``{vertex: [slack bit variable names]}`` for penalised vertices.
    """

    bqm: BinaryQuadraticModel
    graph: Graph
    k: int
    penalty: float
    slack_bits: dict[int, list[str]]
    big_m: dict[int, int]

    @property
    def num_variables(self) -> int:
        return self.bqm.num_variables

    @property
    def num_slack_variables(self) -> int:
        return sum(len(bits) for bits in self.slack_bits.values())

    def vertex_variable(self, vertex: int) -> str:
        return f"x{vertex}"

    def decode(self, assignment: dict[object, int]) -> frozenset[int]:
        """Extract the selected vertex set from a sampler assignment."""
        return frozenset(
            v for v in self.graph.vertices
            if assignment.get(self.vertex_variable(v), 0)
        )

    def cost(self, assignment: dict[object, int]) -> float:
        """Objective value ``F`` of an assignment (the tables' "cost")."""
        full = dict(assignment)
        for bits in self.slack_bits.values():
            for name in bits:
                full.setdefault(name, 0)
        for v in self.graph.vertices:
            full.setdefault(self.vertex_variable(v), 0)
        return self.bqm.energy(full)

    def feasible_cost(self, subset: frozenset[int]) -> float:
        """The cost of a feasible k-plex with optimal slack: ``-|subset|``."""
        return -float(len(subset))

    def optimal_slack(self, subset: frozenset[int] | set[int]) -> dict[str, int]:
        """The full assignment for ``subset`` with slack chosen optimally.

        Given the vertex selection, each penalty
        ``(sum_j x_j + s_v + M_v x_v - C_v)^2`` is minimised by the
        closed-form slack ``s_v = clamp(C_v - M_v x_v - sum_j x_j, 0,
        2^L - 1)``; the returned assignment realises that choice in the
        binary slack bits.  A feasible k-plex therefore gets exactly
        energy ``-|subset|``.
        """
        members = frozenset(subset)
        complement = self.graph.complement()
        assignment: dict[str, int] = {
            self.vertex_variable(v): int(v in members) for v in self.graph.vertices
        }
        for v, bits in self.slack_bits.items():
            m_v = self.big_m[v]
            c_v = (self.k - 1) + m_v
            selected_neighbours = len(complement.neighbors(v) & members)
            target = c_v - m_v * int(v in members) - selected_neighbours
            target = max(0, min(target, (1 << len(bits)) - 1))
            for r, name in enumerate(bits):
                assignment[name] = (target >> r) & 1
        return assignment

    def collapsed_cost(self, subset: frozenset[int] | set[int]) -> float:
        """Objective value of ``subset`` with optimal slack completion."""
        return self.bqm.energy(self.optimal_slack(subset))


def build_mkp_qubo(
    graph: Graph,
    k: int,
    penalty: float = 2.0,
    paper_faithful_width: bool = False,
    global_big_m: bool = False,
) -> MkpQubo:
    """Build the qaMKP objective for ``graph`` and ``k``.

    Parameters
    ----------
    penalty:
        The weight ``R``; the paper proves ``R > 1`` suffices and finds
        ``R = 2`` best experimentally.
    paper_faithful_width:
        Use the paper's printed slack width formula (see module docs).
    global_big_m:
        Ablation: one global ``M = max_i M_i`` instead of the paper's
        per-vertex values (more slack bits, same optima).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if penalty <= 1.0:
        raise ValueError(f"penalty R must be > 1 for correctness, got {penalty}")
    complement = graph.complement()
    bqm = BinaryQuadraticModel()
    slack_bits: dict[int, list[str]] = {}
    big_m: dict[int, int] = {}

    # Objective part: maximise subset size.
    for v in graph.vertices:
        bqm.add_linear(f"x{v}", -1.0)

    global_m = max(
        (complement.degree(v) - k + 1 for v in graph.vertices), default=0
    )
    for v in graph.vertices:
        degree = complement.degree(v)
        m_v = global_m if global_big_m else degree - k + 1
        if m_v <= 0:
            continue  # constraint can never bind: no penalty needed
        big_m[v] = m_v
        # Penalty terms: sum_{j in N(v)} x_j + s_v + M_v x_v - C_v, with
        # C_v = (k - 1) + M_v.
        c_v = (k - 1) + m_v
        max_slack = max(c_v, k - 1)  # covers both the x_v = 0 and = 1 cases
        width = slack_width(max_slack, paper_faithful_width)
        bits = [f"s{v}_{r}" for r in range(width)]
        slack_bits[v] = bits
        terms: list[tuple[str, float]] = [
            (f"x{j}", 1.0) for j in sorted(complement.neighbors(v))
        ]
        terms.extend((name, float(1 << r)) for r, name in enumerate(bits))
        terms.append((f"x{v}", float(m_v)))
        _add_squared_penalty(bqm, terms, -float(c_v), penalty)

    return MkpQubo(bqm, graph, k, penalty, slack_bits, big_m)


def _add_squared_penalty(
    bqm: BinaryQuadraticModel,
    terms: list[tuple[str, float]],
    constant: float,
    weight: float,
) -> None:
    """Add ``weight * (sum a_u z_u + constant)^2`` for binary ``z``.

    Coefficients on the same variable are merged first (``x_v`` appears
    both as a neighbour term and the big-M term in degenerate graphs).
    Uses ``z^2 = z`` to fold diagonal products into linear biases.
    """
    merged: dict[str, float] = {}
    for name, coeff in terms:
        merged[name] = merged.get(name, 0.0) + coeff
    names = list(merged)
    for i, u in enumerate(names):
        a_u = merged[u]
        # Diagonal: a_u^2 z_u^2 = a_u^2 z_u, plus cross with the constant.
        bqm.add_linear(u, weight * (a_u * a_u + 2.0 * constant * a_u))
        for v in names[i + 1:]:
            bqm.add_quadratic(u, v, weight * 2.0 * a_u * merged[v])
    bqm.add_offset(weight * constant * constant)
