"""Anneal schedules for the Metropolis samplers.

Real annealers expose schedule controls — ramp shape, mid-anneal
pauses, fast quenches — and practitioners tune them per problem.  This
module provides the common shapes as inverse-temperature (beta)
sequences consumable by
:class:`repro.annealing.sa.SimulatedAnnealingSampler`:

* :func:`geometric_schedule` — the default exponential ramp;
* :func:`linear_schedule` — a straight beta ramp;
* :func:`paused_schedule` — ramp, hold at an intermediate beta (the
  "anneal pause" known to help tunnelling-dominated problems), then
  finish;
* :func:`quench_schedule` — slow start, abrupt freeze.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "geometric_schedule",
    "linear_schedule",
    "paused_schedule",
    "quench_schedule",
]


def _check(hot: float, cold: float, sweeps: int) -> None:
    if hot <= 0 or cold <= 0:
        raise ValueError(f"betas must be positive, got hot={hot}, cold={cold}")
    if cold < hot:
        raise ValueError(f"cold beta {cold} must be >= hot beta {hot}")
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")


def geometric_schedule(hot: float, cold: float, sweeps: int) -> np.ndarray:
    """Exponential ramp from ``hot`` to ``cold`` (the SA default)."""
    _check(hot, cold, sweeps)
    if sweeps == 1:
        return np.array([cold])
    return np.geomspace(hot, cold, sweeps)


def linear_schedule(hot: float, cold: float, sweeps: int) -> np.ndarray:
    """Straight-line ramp from ``hot`` to ``cold``."""
    _check(hot, cold, sweeps)
    if sweeps == 1:
        return np.array([cold])
    return np.linspace(hot, cold, sweeps)


def paused_schedule(
    hot: float,
    cold: float,
    sweeps: int,
    pause_at: float = 0.5,
    pause_fraction: float = 0.3,
) -> np.ndarray:
    """Ramp with a hold at an intermediate beta.

    ``pause_at`` locates the hold point as a fraction of the beta range
    (log scale); ``pause_fraction`` is the share of sweeps spent
    holding.  D-Wave exposes the same knob because pausing near the
    minimum gap improves success probabilities on many instances.
    """
    _check(hot, cold, sweeps)
    if not (0.0 < pause_at < 1.0):
        raise ValueError(f"pause_at must be in (0, 1), got {pause_at}")
    if not (0.0 <= pause_fraction < 1.0):
        raise ValueError(
            f"pause_fraction must be in [0, 1), got {pause_fraction}"
        )
    hold = int(round(sweeps * pause_fraction))
    ramp = sweeps - hold
    if ramp < 2:
        return geometric_schedule(hot, cold, sweeps)
    beta_pause = hot * (cold / hot) ** pause_at
    first = max(1, int(round(ramp * pause_at)))
    second = ramp - first
    parts = [np.geomspace(hot, beta_pause, first + 1)[:-1]]
    parts.append(np.full(hold, beta_pause))
    parts.append(np.geomspace(beta_pause, cold, max(second, 1)))
    return np.concatenate(parts)[:sweeps]


def quench_schedule(
    hot: float, cold: float, sweeps: int, quench_at: float = 0.8
) -> np.ndarray:
    """Slow exploration, then an abrupt freeze at ``quench_at``.

    The pre-quench portion ramps only a quarter of the way to cold (log
    scale), keeping the walk hot; the remainder jumps straight to the
    cold beta — the "fast quench" end-of-anneal shape.
    """
    _check(hot, cold, sweeps)
    if not (0.0 < quench_at < 1.0):
        raise ValueError(f"quench_at must be in (0, 1), got {quench_at}")
    explore = max(1, int(round(sweeps * quench_at)))
    freeze = sweeps - explore
    warm_end = hot * (cold / hot) ** 0.25
    parts = [np.geomspace(hot, warm_end, explore)]
    if freeze:
        parts.append(np.full(freeze, cold))
    return np.concatenate(parts)[:sweeps]
