"""Hybrid solver (the D-Wave "Hybrid BQM" stand-in, haMKP's backend).

The paper's hybrid baseline has one observable contract: given at least
its 3-second minimum runtime it returns an optimal or near-optimal cost
on the tested instances.  The real service runs a portfolio of strong
classical heuristics (tabu search, SA, decomposition) seeded from
quantum samples; we reproduce the portfolio part — simulated-annealing
restarts polished by the batched tabu engine
(:func:`repro.annealing.tabu.batched_tabu`, all restarts advanced as
one replica matrix) and steepest descent — and report the
minimum-runtime floor in the timing info exactly as the cloud service
does.
"""

from __future__ import annotations

import numpy as np

from ..perf.anneal import local_fields
from .bqm import BinaryQuadraticModel
from .sa import SimulatedAnnealingSampler
from .sampleset import Sample, SampleSet
from .tabu import batched_tabu

__all__ = ["HybridSampler", "steepest_descent"]

#: The service's minimum charge, in microseconds (3 seconds).
MIN_RUNTIME_US = 3.0e6


def steepest_descent(
    bqm: BinaryQuadraticModel, assignment: dict[object, int]
) -> dict[object, int]:
    """Greedy single-flip descent to a local minimum.

    Runs on the cached CSR view with an incrementally maintained delta
    table: each flip refreshes only the flipped variable's neighbours.
    """
    csr = bqm.to_csr()
    order = list(csr.order)
    n = csr.num_variables
    if n == 0:
        return {}
    x = np.array([[assignment[v] for v in order]], dtype=np.int8)
    fields = local_fields(csr.h, csr.indptr, csr.indices, csr.data, x)[0]
    x = x[0]
    delta = (1.0 - 2.0 * x) * fields
    while True:
        best = int(np.argmin(delta))
        if delta[best] >= 0:
            break
        sign = 1.0 - 2.0 * x[best]
        x[best] ^= 1
        delta[best] = -delta[best]
        lo, hi = csr.indptr[best], csr.indptr[best + 1]
        cols = csr.indices[lo:hi]
        delta[cols] += (1.0 - 2.0 * x[cols]) * csr.data[lo:hi] * sign
    return {v: int(x[i]) for i, v in enumerate(order)}


class HybridSampler:
    """Portfolio solver: SA restarts + batched tabu + steepest descent.

    Parameters
    ----------
    num_restarts:
        SA seeds feeding the tabu stage.
    sweeps:
        SA sweeps per seed.
    tabu_iterations:
        Tabu flips per polished seed.
    """

    def __init__(
        self,
        num_restarts: int = 16,
        sweeps: int = 300,
        tabu_iterations: int = 4000,
    ) -> None:
        self.num_restarts = num_restarts
        self.sweeps = sweeps
        self.tabu_iterations = tabu_iterations

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        time_limit_us: float = MIN_RUNTIME_US,
        seed: int | None = None,
        tracer=None,
        kernel: str | None = None,
    ) -> SampleSet:
        """Solve with the hybrid portfolio; runtime floored at 3 s.

        ``kernel`` picks the sweep/tabu kernel backend for both stages
        (:mod:`repro.perf.kernels`); all backends sample identically.
        """
        bqm.require_finite()
        effective_us = max(float(time_limit_us), MIN_RUNTIME_US)
        sa = SimulatedAnnealingSampler()
        raw = sa.sample(
            bqm,
            num_reads=self.num_restarts,
            num_sweeps=self.sweeps,
            seed=seed,
            tracer=tracer,
            kernel=kernel,
        )
        polished: list[Sample] = []
        if raw.samples:
            # The SA stage deduplicates reads, so the tabu batch is one
            # replica per distinct seed state (occurrence counts carried
            # through).  Seeded starts never consume the tabu RNG, so
            # batching leaves each trajectory identical to a standalone
            # polish of the same seed state.
            res = batched_tabu(
                bqm,
                num_restarts=len(raw.samples),
                initial_states=[dict(s.assignment) for s in raw.samples],
                iterations=self.tabu_iterations,
                tracer=tracer,
                kernel=kernel,
            )
            for sample, assignment in zip(raw.samples, res.assignments):
                assignment = steepest_descent(bqm, assignment)
                polished.append(
                    Sample(assignment, bqm.energy(assignment), sample.num_occurrences)
                )
        result = SampleSet(polished)
        result.info.update(
            {
                "total_runtime_us": effective_us,
                "minimum_runtime_us": MIN_RUNTIME_US,
                "num_restarts": self.num_restarts,
                "sweeps_per_restart": self.sweeps,
                "tabu_iterations": self.tabu_iterations,
            }
        )
        return result
