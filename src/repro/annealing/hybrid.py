"""Hybrid solver (the D-Wave "Hybrid BQM" stand-in, haMKP's backend).

The paper's hybrid baseline has one observable contract: given at least
its 3-second minimum runtime it returns an optimal or near-optimal cost
on the tested instances.  The real service runs a portfolio of strong
classical heuristics (tabu search, SA, decomposition) seeded from
quantum samples; we reproduce the portfolio part — simulated-annealing
restarts, each polished by :func:`repro.annealing.tabu.tabu_search` and
steepest descent — and report the minimum-runtime floor in the timing
info exactly as the cloud service does.
"""

from __future__ import annotations

from .bqm import BinaryQuadraticModel
from .sa import SimulatedAnnealingSampler
from .sampleset import Sample, SampleSet
from .tabu import tabu_search

__all__ = ["HybridSampler", "steepest_descent"]

#: The service's minimum charge, in microseconds (3 seconds).
MIN_RUNTIME_US = 3.0e6


def steepest_descent(
    bqm: BinaryQuadraticModel, assignment: dict[object, int]
) -> dict[object, int]:
    """Greedy single-flip descent to a local minimum."""
    import numpy as np

    h, j, _offset, order = bqm.to_numpy()
    jsym = j + j.T
    x = np.array([assignment[v] for v in order], dtype=float)
    while True:
        field = h + jsym @ x
        delta = (1.0 - 2.0 * x) * field
        best = int(np.argmin(delta))
        if delta[best] >= 0:
            break
        x[best] = 1.0 - x[best]
    return {v: int(x[i]) for i, v in enumerate(order)}


class HybridSampler:
    """Portfolio solver: SA restarts + tabu search + steepest descent.

    Parameters
    ----------
    num_restarts:
        SA seeds feeding the tabu stage.
    sweeps:
        SA sweeps per seed.
    tabu_iterations:
        Tabu flips per polished seed.
    """

    def __init__(
        self,
        num_restarts: int = 16,
        sweeps: int = 300,
        tabu_iterations: int = 4000,
    ) -> None:
        self.num_restarts = num_restarts
        self.sweeps = sweeps
        self.tabu_iterations = tabu_iterations

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        time_limit_us: float = MIN_RUNTIME_US,
        seed: int | None = None,
    ) -> SampleSet:
        """Solve with the hybrid portfolio; runtime floored at 3 s."""
        bqm.require_finite()
        effective_us = max(float(time_limit_us), MIN_RUNTIME_US)
        sa = SimulatedAnnealingSampler()
        raw = sa.sample(
            bqm,
            num_reads=self.num_restarts,
            num_sweeps=self.sweeps,
            seed=seed,
        )
        polished: list[Sample] = []
        for idx, sample in enumerate(raw.samples):
            assignment, energy = tabu_search(
                bqm,
                dict(sample.assignment),
                iterations=self.tabu_iterations,
                seed=None if seed is None else seed + idx,
            )
            assignment = steepest_descent(bqm, assignment)
            polished.append(
                Sample(assignment, bqm.energy(assignment), sample.num_occurrences)
            )
        result = SampleSet(polished)
        result.info.update(
            {
                "total_runtime_us": effective_us,
                "minimum_runtime_us": MIN_RUNTIME_US,
                "num_restarts": self.num_restarts,
                "sweeps_per_restart": self.sweeps,
                "tabu_iterations": self.tabu_iterations,
            }
        )
        return result
