"""Minor embedding of logical problems into hardware topologies.

Each logical variable is represented by a *chain* — a connected set of
physical qubits forced to agree by strong ferromagnetic couplings.  An
embedding is valid when chains are vertex-disjoint and connected, and
every logical interaction has at least one physical coupler between the
two chains.

Finding minimum embeddings is NP-hard; like the paper we use a greedy
heuristic in the spirit of Cai, Macready & Roy (2014): place variables
in descending interaction-degree order, and for each one grow its chain
from a root qubit chosen to minimise the total BFS distance to the
chains of its already-placed neighbours, annexing the connecting paths.

(Terminology note: the paper calls the average number of physical
qubits per variable the "chain strength"; the standard term is *chain
length*, with chain strength reserved for the coupling magnitude.  We
report both under their standard names.)
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from .topology import HardwareGraph

__all__ = [
    "EmbeddingError",
    "Embedding",
    "find_embedding",
    "clique_embedding",
    "clique_embedding_auto",
    "suggest_chain_strength",
]

Variable = Hashable


class EmbeddingError(RuntimeError):
    """Raised when the heuristic cannot place the problem on the hardware."""


@dataclass(frozen=True)
class Embedding:
    """A chain per logical variable on a given hardware graph."""

    chains: dict[Variable, tuple[int, ...]]
    hardware: HardwareGraph

    @property
    def num_physical_qubits(self) -> int:
        return sum(len(c) for c in self.chains.values())

    @property
    def average_chain_length(self) -> float:
        if not self.chains:
            return 0.0
        return self.num_physical_qubits / len(self.chains)

    @property
    def max_chain_length(self) -> int:
        return max((len(c) for c in self.chains.values()), default=0)

    def validate(self, logical_edges: Sequence[tuple[Variable, Variable]]) -> None:
        """Raise ``EmbeddingError`` on any violated embedding property."""
        seen: set[int] = set()
        for var, chain in self.chains.items():
            if not chain:
                raise EmbeddingError(f"variable {var!r} has an empty chain")
            overlap = seen.intersection(chain)
            if overlap:
                raise EmbeddingError(f"chains overlap on qubits {sorted(overlap)}")
            seen.update(chain)
            if not self._chain_connected(chain):
                raise EmbeddingError(f"chain of {var!r} is disconnected: {chain}")
        for u, v in logical_edges:
            if not self._chains_coupled(self.chains[u], self.chains[v]):
                raise EmbeddingError(f"no coupler realises logical edge ({u!r}, {v!r})")

    def _chain_connected(self, chain: tuple[int, ...]) -> bool:
        members = set(chain)
        queue = deque([chain[0]])
        reached = {chain[0]}
        while queue:
            q = queue.popleft()
            for w in self.hardware.adjacency[q]:
                if w in members and w not in reached:
                    reached.add(w)
                    queue.append(w)
        return reached == members

    def _chains_coupled(self, chain_a: tuple[int, ...], chain_b: tuple[int, ...]) -> bool:
        b = set(chain_b)
        return any(w in b for q in chain_a for w in self.hardware.adjacency[q])


def find_embedding(
    variables: Sequence[Variable],
    logical_edges: Sequence[tuple[Variable, Variable]],
    hardware: HardwareGraph,
    seed: int | None = None,
    max_tries: int = 5,
) -> Embedding:
    """Embed a logical problem: greedy chain growth, clique fallback.

    Greedy chain growth handles sparse interaction graphs with short
    chains; when it fails (dense, near-clique problems — the MKP QUBO
    penalty groups are cliques) we fall back to the deterministic
    Chimera clique template, exactly as D-Wave tooling does for dense
    inputs.  Raises :class:`EmbeddingError` when both fail.
    """
    rng = random.Random(seed)
    last_error: EmbeddingError | None = None
    for attempt in range(max_tries):
        try:
            chains = _try_embed(list(variables), list(logical_edges), hardware, rng)
        except EmbeddingError as exc:
            last_error = exc
            continue
        emb = Embedding({v: tuple(sorted(c)) for v, c in chains.items()}, hardware)
        emb.validate(logical_edges)
        return emb
    # Congestion-based router (the minorminer-style heuristic).  Dense
    # near-clique problems rarely beat the clique template and make the
    # router grind, so it only runs when the logical graph is sparse
    # enough (or small enough) to profit.
    from .embedding_cm import find_embedding_cm

    sparse_enough = (
        len(variables) <= 60
        or len(logical_edges) <= 6 * max(1, len(variables))
    )
    if sparse_enough:
        try:
            return find_embedding_cm(
                variables, logical_edges, hardware, seed=seed, max_tries=2
            )
        except EmbeddingError as exc:
            last_error = exc
    # Last resort: the deterministic clique template.
    try:
        emb = clique_embedding(variables, hardware)
    except EmbeddingError as exc:
        raise EmbeddingError(
            f"greedy failed after {max_tries} tries; congestion router "
            f"failed ({last_error}); clique template failed too: {exc}"
        ) from exc
    emb.validate(logical_edges)
    return emb


def clique_embedding(
    variables: Sequence[Variable], hardware: HardwareGraph
) -> Embedding:
    """The standard Chimera clique template (works for ANY logical graph).

    Variable ``i`` (block ``b = i // t``, offset ``o = i % t``) gets an
    L-shaped chain meeting at diagonal cell ``(b, b)``: the left-shore
    qubits of column ``b`` in rows ``0..b`` plus the right-shore qubits
    of row ``b`` in columns ``b..m'-1``, where ``m'`` is the smallest
    subgrid holding all variables.  Any two chains meet inside one cell,
    so every logical edge is realisable; chain length is ``m' + 1``.
    """
    m_hw, t = hardware.grid_size, hardware.shore_size
    if not m_hw or not t:
        raise EmbeddingError(
            f"hardware {hardware.name!r} has no Chimera grid parameters"
        )
    n_vars = len(variables)
    m_needed = -(-n_vars // t)  # ceil division: blocks of t variables
    if m_needed > m_hw:
        raise EmbeddingError(
            f"{n_vars} variables need a C{m_needed} subgrid; hardware is C{m_hw}"
        )

    def qid(row: int, col: int, side: int, index: int) -> int:
        return ((row * m_hw + col) * 2 + side) * t + index

    chains: dict[Variable, tuple[int, ...]] = {}
    for i, var in enumerate(variables):
        block, offset = divmod(i, t)
        vertical = [qid(r, block, 0, offset) for r in range(block + 1)]
        horizontal = [qid(block, c, 1, offset) for c in range(block, m_needed)]
        chains[var] = tuple(sorted(set(vertical + horizontal)))
    return Embedding(chains, hardware)


def _try_embed(
    variables: list[Variable],
    logical_edges: list[tuple[Variable, Variable]],
    hardware: HardwareGraph,
    rng: random.Random,
) -> dict[Variable, set[int]]:
    neighbours: dict[Variable, set[Variable]] = {v: set() for v in variables}
    for u, v in logical_edges:
        neighbours[u].add(v)
        neighbours[v].add(u)
    order = sorted(variables, key=lambda v: (-len(neighbours[v]), str(v)))
    # Small random perturbation so restarts explore different layouts.
    if rng.random() < 0.5 and len(order) > 2:
        i, jdx = rng.randrange(len(order)), rng.randrange(len(order))
        order[i], order[jdx] = order[jdx], order[i]

    chains: dict[Variable, set[int]] = {}
    used: set[int] = set()
    for var in order:
        placed = [w for w in sorted(neighbours[var], key=str) if w in chains]
        placed.sort(key=lambda w: len(chains[w]))
        if not placed:
            root = _seed_qubit(hardware, used, rng)
            chains[var] = {root}
            used.add(root)
            continue
        # Seed the new chain next to the first (smallest) neighbour
        # chain, then snake it towards each remaining neighbour in
        # turn, annexing the connecting free path.  Letting the chain
        # grow incrementally succeeds where demanding a single root
        # reachable from *all* neighbours at once fails.
        dist, parent = _bfs_from_chain(
            hardware, chains[placed[0]], used, max_dist=_BFS_RADIUS
        )
        if not dist:
            raise EmbeddingError(
                f"chain of first neighbour of {var!r} is walled in"
            )
        root = min(dist, key=dist.get)
        chain = {root} | _walk_back(root, parent)
        for w in placed[1:]:
            if _chains_touch(hardware, chain, chains[w]):
                continue
            path = _connect(hardware, chain, chains[w], used)
            if path is None:
                raise EmbeddingError(
                    f"cannot route {var!r} to its neighbour {w!r}"
                )
            chain |= path
        chains[var] = chain
        used.update(chain)
    return chains


def _chains_touch(hardware: HardwareGraph, a: set[int], b: set[int]) -> bool:
    """True if some coupler joins the two qubit sets."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    return any(w in large for q in small for w in hardware.adjacency[q])


def _connect(
    hardware: HardwareGraph,
    chain: set[int],
    target: set[int],
    used: set[int],
) -> set[int] | None:
    """Shortest free path from ``chain`` to a qubit adjacent to ``target``.

    BFS starts at free qubits adjacent to ``chain`` and stops at the
    first qubit adjacent to ``target``; returns the path qubits (to be
    annexed into ``chain``), or ``None`` when no free route exists
    within the radius.
    """
    target_frontier = {
        q
        for t in target
        for q in hardware.adjacency[t]
        if q not in used
    }
    if not target_frontier:
        return None
    dist: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    queue: deque[int] = deque()
    for q in chain:
        for w in hardware.adjacency[q]:
            if w not in used and w not in dist:
                dist[w] = 1
                parent[w] = None
                queue.append(w)
                if w in target_frontier:
                    return {w}
    while queue:
        q = queue.popleft()
        if dist[q] >= _BFS_RADIUS:
            continue
        for w in hardware.adjacency[q]:
            if w not in used and w not in dist:
                dist[w] = dist[q] + 1
                parent[w] = q
                if w in target_frontier:
                    return _walk_back(w, parent)
                queue.append(w)
    return None


def clique_embedding_auto(variables: Sequence[Variable]) -> Embedding:
    """Clique template on the smallest Chimera grid that fits.

    Mirrors the real-world workflow of moving to a bigger chip when a
    problem does not fit: builds ``chimera_graph(ceil(n/4))`` and lays
    the variables out with :func:`clique_embedding`.
    """
    from .topology import chimera_graph

    t = 4
    m_needed = max(1, -(-len(variables) // t))
    return clique_embedding(variables, chimera_graph(m_needed, t))


def _seed_qubit(hardware: HardwareGraph, used: set[int], rng: random.Random) -> int:
    """A starting qubit for a variable with no placed neighbours.

    Staying adjacent to the already-used region keeps the layout compact
    (scattered seeds fragment the free space and doom later chains); the
    very first seed goes near the middle of the chip.
    """
    if not used:
        centre = hardware.num_qubits // 2
        for offset in range(hardware.num_qubits):
            for q in (centre + offset, centre - offset):
                if 0 <= q < hardware.num_qubits:
                    return q
    frontier = [
        q
        for u in used
        for q in hardware.adjacency[u]
        if q not in used
    ]
    if frontier:
        return frontier[rng.randrange(len(frontier))]
    free = [q for q in range(hardware.num_qubits) if q not in used]
    if not free:
        raise EmbeddingError("hardware exhausted")
    return free[rng.randrange(len(free))]


#: BFS horizon for chain growth; compact layouts never need paths this
#: long, and capping the search keeps embedding near-linear in practice.
_BFS_RADIUS = 24


def _bfs_from_chain(
    hardware: HardwareGraph,
    chain: set[int],
    used: set[int],
    max_dist: int | None = None,
) -> tuple[dict[int, int], dict[int, int | None]]:
    """BFS over free qubits started at the frontier of ``chain``.

    Returns ``(dist, parent)``; frontier qubits (free, adjacent to the
    chain) have distance 1 and parent ``None``.  ``max_dist`` bounds the
    search horizon.
    """
    dist: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    queue: deque[int] = deque()
    for q in chain:
        for w in hardware.adjacency[q]:
            if w not in used and w not in dist:
                dist[w] = 1
                parent[w] = None
                queue.append(w)
    while queue:
        q = queue.popleft()
        if max_dist is not None and dist[q] >= max_dist:
            continue
        for w in hardware.adjacency[q]:
            if w not in used and w not in dist:
                dist[w] = dist[q] + 1
                parent[w] = q
                queue.append(w)
    return dist, parent


def _walk_back(root: int, parent: dict[int, int | None]) -> set[int]:
    """Path qubits from ``root`` back to (but excluding) the source chain."""
    path: set[int] = set()
    q: int | None = root
    while q is not None:
        path.add(q)
        q = parent[q]
    return path


def suggest_chain_strength(
    linear: dict[Variable, float], quadratic: dict[tuple[Variable, Variable], float]
) -> float:
    """A chain coupling magnitude that normally keeps chains intact.

    Uses the uniform-torque-compensation flavour: a multiple of the RMS
    coupling magnitude, floored at the largest single bias.
    """
    import math

    values = [abs(b) for b in quadratic.values()] or [1.0]
    rms = math.sqrt(sum(v * v for v in values) / len(values))
    peak = max([abs(b) for b in linear.values()] + values + [1.0])
    return max(1.414 * rms, peak)
