"""Sample sets: the result type every sampler returns.

Mirrors the slice of ``dimod.SampleSet`` the paper's experiments need:
samples with energies and occurrence counts, best-sample access, and
solver-reported timing info (annealing time per shot, shot count, total
runtime in microseconds — the quantities Tables V-VII sweep).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["RowAssignment", "Sample", "SampleSet"]


class RowAssignment(Mapping):
    """Lazy variable->value mapping over one raw sampler state row.

    Samplers that advance replicas as a matrix produce thousands of
    samples whose assignments are mostly never read individually;
    building a real dict per replica dominates their result
    construction.  This view holds the shared variable order plus the
    row's values and materialises an actual dict only on first access,
    so constructing a sample set is O(1) per sample while every Mapping
    operation (and equality with plain dicts) behaves exactly as the
    eager dict did.
    """

    __slots__ = ("_order", "_row", "_dict")

    def __init__(self, order: Sequence[object], row: Sequence[int]) -> None:
        self._order = order
        self._row = row
        self._dict: dict | None = None

    def _materialise(self) -> dict:
        d = self._dict
        if d is None:
            row = self._row
            # Sampler rows arrive as int8 ndarray views; tolist() both
            # converts to Python ints and is deferred to first access.
            if hasattr(row, "tolist"):
                row = row.tolist()
            d = self._dict = dict(zip(self._order, row))
        return d

    def __getitem__(self, variable: object) -> int:
        return self._materialise()[variable]

    def __iter__(self):
        return iter(self._materialise())

    def __len__(self) -> int:
        return len(self._order)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowAssignment):
            return self._materialise() == other._materialise()
        if isinstance(other, dict):
            return self._materialise() == other
        if isinstance(other, Mapping):
            return self._materialise() == dict(other)
        return NotImplemented

    __hash__ = None  # mutable-adjacent, like the dicts it replaces

    def __repr__(self) -> str:
        return repr(self._materialise())


@dataclass(frozen=True)
class Sample:
    """One assignment with its energy and multiplicity."""

    assignment: Mapping[object, int]
    energy: float
    num_occurrences: int = 1

    def value(self, variable: object) -> int:
        return self.assignment[variable]


@dataclass
class SampleSet:
    """Samples sorted by energy plus solver metadata.

    Attributes
    ----------
    samples:
        All samples, ascending energy.
    info:
        Free-form solver metadata.  The built-in samplers populate
        ``annealing_time_us``, ``num_reads``, ``total_runtime_us``,
        ``sweeps_per_read``, and (QPU) ``chain_break_fraction``.
    """

    samples: list[Sample] = field(default_factory=list)
    info: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Sort a copy — callers keep ownership of the list they passed
        # in (fault-injection plans and test fixtures index into theirs).
        # Ties break on descending num_occurrences, then input order
        # (sorted() is stable), so equal-energy ordering is deterministic
        # across platforms and sampler backends.
        self.samples = sorted(
            self.samples, key=lambda s: (s.energy, -s.num_occurrences)
        )

    @property
    def first(self) -> Sample:
        """The lowest-energy sample."""
        if not self.samples:
            raise ValueError("empty sample set")
        return self.samples[0]

    @property
    def lowest_energy(self) -> float:
        return self.first.energy

    def __len__(self) -> int:
        return sum(s.num_occurrences for s in self.samples)

    def __iter__(self):
        return iter(self.samples)

    @classmethod
    def from_states(
        cls,
        states: Sequence[Mapping[object, int]],
        energies: Sequence[float],
        info: dict[str, object] | None = None,
    ) -> "SampleSet":
        """Aggregate raw states (duplicates merged) into a sample set."""
        seen: dict[tuple, Sample] = {}
        for assignment, energy in zip(states, energies):
            key = tuple(sorted(assignment.items(), key=lambda kv: str(kv[0])))
            if key in seen:
                old = seen[key]
                seen[key] = Sample(old.assignment, old.energy, old.num_occurrences + 1)
            else:
                seen[key] = Sample(dict(assignment), float(energy))
        return cls(list(seen.values()), info or {})

    @classmethod
    def from_counts(
        cls,
        assignments: Sequence[Mapping[object, int]],
        energies: Sequence[float],
        counts: Sequence[int],
        info: dict[str, object] | None = None,
    ) -> "SampleSet":
        """Build from **already-deduplicated** assignments with counts.

        The fast path for samplers that hold their replicas as a state
        matrix: merging duplicate rows by raw bytes before any Python
        dict exists is far cheaper than :meth:`from_states`' per-sample
        key sort, and yields the same sample set when the caller's
        grouping matches dict equality (same variables, same order in
        every row).  Assignments are stored as given — callers pass
        freshly built dicts (or :class:`RowAssignment` views) the
        sample can own.
        """
        samples = [
            Sample(assignment, float(energy), int(count))
            for assignment, energy, count in zip(assignments, energies, counts)
        ]
        return cls(samples, info or {})

    def truncate(self, count: int) -> "SampleSet":
        """The ``count`` lowest-energy samples as a new set."""
        return SampleSet(list(self.samples[:count]), dict(self.info))

    def filter(self, predicate) -> "SampleSet":
        """Samples for which ``predicate(sample)`` holds, as a new set.

        ``info`` is carried over; the result may be empty (callers that
        require a best sample must check before touching ``first``).
        """
        return SampleSet([s for s in self.samples if predicate(s)], dict(self.info))
