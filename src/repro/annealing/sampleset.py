"""Sample sets: the result type every sampler returns.

Mirrors the slice of ``dimod.SampleSet`` the paper's experiments need:
samples with energies and occurrence counts, best-sample access, and
solver-reported timing info (annealing time per shot, shot count, total
runtime in microseconds — the quantities Tables V-VII sweep).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["Sample", "SampleSet"]


@dataclass(frozen=True)
class Sample:
    """One assignment with its energy and multiplicity."""

    assignment: Mapping[object, int]
    energy: float
    num_occurrences: int = 1

    def value(self, variable: object) -> int:
        return self.assignment[variable]


@dataclass
class SampleSet:
    """Samples sorted by energy plus solver metadata.

    Attributes
    ----------
    samples:
        All samples, ascending energy.
    info:
        Free-form solver metadata.  The built-in samplers populate
        ``annealing_time_us``, ``num_reads``, ``total_runtime_us``,
        ``sweeps_per_read``, and (QPU) ``chain_break_fraction``.
    """

    samples: list[Sample] = field(default_factory=list)
    info: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Sort a copy — callers keep ownership of the list they passed
        # in (fault-injection plans and test fixtures index into theirs).
        # Ties break on descending num_occurrences, then input order
        # (sorted() is stable), so equal-energy ordering is deterministic
        # across platforms and sampler backends.
        self.samples = sorted(
            self.samples, key=lambda s: (s.energy, -s.num_occurrences)
        )

    @property
    def first(self) -> Sample:
        """The lowest-energy sample."""
        if not self.samples:
            raise ValueError("empty sample set")
        return self.samples[0]

    @property
    def lowest_energy(self) -> float:
        return self.first.energy

    def __len__(self) -> int:
        return sum(s.num_occurrences for s in self.samples)

    def __iter__(self):
        return iter(self.samples)

    @classmethod
    def from_states(
        cls,
        states: Sequence[Mapping[object, int]],
        energies: Sequence[float],
        info: dict[str, object] | None = None,
    ) -> "SampleSet":
        """Aggregate raw states (duplicates merged) into a sample set."""
        seen: dict[tuple, Sample] = {}
        for assignment, energy in zip(states, energies):
            key = tuple(sorted(assignment.items(), key=lambda kv: str(kv[0])))
            if key in seen:
                old = seen[key]
                seen[key] = Sample(old.assignment, old.energy, old.num_occurrences + 1)
            else:
                seen[key] = Sample(dict(assignment), float(energy))
        return cls(list(seen.values()), info or {})

    def truncate(self, count: int) -> "SampleSet":
        """The ``count`` lowest-energy samples as a new set."""
        return SampleSet(list(self.samples[:count]), dict(self.info))

    def filter(self, predicate) -> "SampleSet":
        """Samples for which ``predicate(sample)`` holds, as a new set.

        ``info`` is carried over; the result may be empty (callers that
        require a best sample must check before touching ``first``).
        """
        return SampleSet([s for s in self.samples if predicate(s)], dict(self.info))
