"""Simulated annealing sampler (the classical "SA" baseline / neal stand-in).

Single-spin-flip Metropolis over a QUBO with a geometric inverse-
temperature schedule, vectorised across reads: all ``num_reads``
replicas advance together on the sparse incremental engine
(:mod:`repro.perf.anneal`).  Sweeps walk a chunked schedule over the
CSR couplings — each chunk's local fields ``h + states @ J_sym`` are
built in one compiled sparse product and accepted flips scatter only
to intra-chunk neighbours — so a sweep costs ``O(num_reads * nnz)``
work instead of ``num_vars`` dense matrix-vector products, while
consuming the RNG stream exactly as the seed dense sampler did, so
fixed-seed runs are flip-for-flip (and sampleset-for-sampleset)
identical.

The paper's SA baseline controls runtime exactly like the annealer: a
fixed small number of sweeps per read and a shot count ``s`` that scales
with the runtime budget.
"""

from __future__ import annotations

import numpy as np

from ..obs import NULL_TRACER
from ..perf.anneal import (
    fields_energies,
    fields_energies_t,
    refresh_fields_t,
    sa_shard_reads,
    sa_sweep,
)
from .bqm import BinaryQuadraticModel
from .sampleset import RowAssignment, SampleSet

__all__ = ["SimulatedAnnealingSampler"]


class SimulatedAnnealingSampler:
    """Metropolis annealer over binary quadratic models.

    Parameters
    ----------
    beta_range:
        Optional ``(beta_hot, beta_cold)``; derived from the model's
        coefficient magnitudes when omitted (hot enough to accept
        almost any flip, cold enough to freeze the largest bias).
    """

    def __init__(self, beta_range: tuple[float, float] | None = None) -> None:
        self.beta_range = beta_range

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        num_sweeps: int = 100,
        seed: int | None = None,
        initial_states: np.ndarray | None = None,
        beta_schedule: np.ndarray | None = None,
        workers: int | None = None,
        tracer=None,
        kernel: str | None = None,
    ) -> SampleSet:
        """Run ``num_reads`` independent anneals of ``num_sweeps`` sweeps.

        ``kernel`` selects the sweep kernel backend
        (:mod:`repro.perf.kernels`); None honours ``REPRO_KERNEL``.
        Every backend produces flip-for-flip identical samplesets.

        ``beta_schedule`` overrides the built-in geometric ramp with an
        explicit per-sweep beta sequence (see
        :mod:`repro.annealing.schedule`); its length supersedes
        ``num_sweeps``.

        ``workers`` (> 1) shards the replica batch over a process pool.
        All uniform draws are made up front on this side of the fork, so
        sharded results stay byte-identical to in-process ones — at the
        cost of materialising the full ``(sweeps, vars, reads)`` draw
        tensor, which is what bounds sensible shard sizes.

        ``tracer`` (optional :class:`repro.obs.Tracer`) opens one
        ``anneal.sa`` span with an ``anneal.sweep`` child per sweep
        (sharded runs charge the pool's sweeps in aggregate, like the
        perf engine's chunk workers); the span claims the exact sweep
        and accepted-flip totals also reported in ``info``, so the run
        ledger reconciles them bit-for-bit.
        """
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if num_sweeps < 1:
            raise ValueError(f"num_sweeps must be >= 1, got {num_sweeps}")
        if beta_schedule is not None:
            beta_schedule = np.asarray(beta_schedule, dtype=float)
            if beta_schedule.ndim != 1 or beta_schedule.size < 1:
                raise ValueError("beta_schedule must be a non-empty 1-D array")
            num_sweeps = int(beta_schedule.size)
        bqm.require_finite()
        tracer = tracer or NULL_TRACER
        rng = np.random.default_rng(seed)
        csr = bqm.to_csr()
        order = list(csr.order)
        n = csr.num_variables
        if n == 0:
            # One independent dict per read: a shared literal here would
            # alias every sample onto the same mutable assignment.
            result = SampleSet.from_states(
                [{} for _ in range(num_reads)], [bqm.offset] * num_reads
            )
            result.info.update(
                {
                    "num_reads": num_reads,
                    "sweeps_per_read": num_sweeps,
                    "num_flips": 0,
                }
            )
            return result
        if initial_states is not None:
            init = np.asarray(initial_states, dtype=float)
            if init.shape != (num_reads, n):
                raise ValueError(
                    f"initial_states must be ({num_reads}, {n}), got {init.shape}"
                )
            init = init.astype(np.int8)
        else:
            init = rng.integers(0, 2, size=(num_reads, n)).astype(np.int8)
        betas = (
            beta_schedule
            if beta_schedule is not None
            else self._schedule(csr, num_sweeps)
        )
        row_sums = csr.row_sums
        spmat = csr.spmatrix
        with tracer.span(
            "anneal.sa", num_reads=num_reads, num_sweeps=num_sweeps, num_variables=n
        ) as span:
            if workers is not None and workers > 1 and num_reads > 1:
                uniforms = rng.random((num_sweeps, n, num_reads))
                states, fields, per_sweep = sa_shard_reads(
                    csr.h, csr.indptr, csr.indices, csr.data, row_sums,
                    init, betas, uniforms, workers, kernel=kernel,
                )
                # Energies come straight from the returned fields —
                # O(reads*n), no per-pair gather; row-wise reductions
                # keep every replica's value shard-independent.
                energies = fields_energies(
                    states.astype(np.float64), fields, csr.h, float(bqm.offset)
                )
                total_flips = int(per_sweep.sum())
                tracer.add("anneal_sweeps", num_sweeps)
                tracer.add("anneal_flips", total_flips)
            else:
                plan = csr.sweep_plan
                spins_t = np.ascontiguousarray(init.T, dtype=np.float64)
                spins_t *= -2.0
                spins_t += 1.0                       # ±1 view: t = 1 - 2s
                total_flips = 0
                for t, beta in enumerate(betas):
                    with tracer.span("anneal.sweep", sweep=t):
                        uniforms = rng.random((n, num_reads))
                        flips = sa_sweep(
                            plan, spins_t, float(beta), uniforms, kernel=kernel
                        )
                        tracer.add("anneal_sweeps", 1)
                        tracer.add("anneal_flips", flips)
                        total_flips += flips
                # The sweep's chunk-local fields are transient; energies
                # want full fields, priced in the transposed layout
                # directly — no batch transposes.
                fields_t = refresh_fields_t(
                    csr.h, csr.indptr, csr.indices, csr.data, row_sums,
                    spins_t, spmat,
                )
                states = spins_t.T.astype(np.int8, order="C")
                np.subtract(1, states, out=states)
                states >>= 1                         # back to 0/1, exactly
                energies = fields_energies_t(
                    spins_t, fields_t, csr.h, float(bqm.offset)
                )
            span.claim("anneal_sweeps", num_sweeps)
            span.claim("anneal_flips", total_flips)
        # Merge duplicate replicas *before* building any Python dicts:
        # unique-by-row-bytes is a faithful dedup key (every row shares
        # ``order``), matching ``from_states``' grouping at a fraction
        # of its cost — restoring first-seen order and keeping first-row
        # energies preserves the resulting set exactly.
        row_bytes = states.view(np.dtype((np.void, states.shape[1]))).ravel()
        _, first_idx, counts = np.unique(
            row_bytes, return_index=True, return_counts=True
        )
        perm = np.argsort(first_idx, kind="stable")
        firsts = first_idx[perm]
        assignments = [RowAssignment(order, row) for row in states[firsts]]
        result = SampleSet.from_counts(
            assignments, energies[firsts].tolist(), counts[perm].tolist()
        )
        result.info.update(
            {
                "num_reads": num_reads,
                "sweeps_per_read": num_sweeps,
                "num_flips": total_flips,
            }
        )
        return result

    def _schedule(self, csr, num_sweeps: int) -> np.ndarray:
        """Geometric beta ramp sized to the model's energy scale."""
        if self.beta_range is not None:
            hot, cold = self.beta_range
        else:
            # Largest possible single-flip |delta E| bounds the hot end;
            # the smallest non-zero coefficient sets the cold end.
            max_delta = float(np.max(np.abs(csr.h) + csr.abs_row_sums()))
            coeffs = np.concatenate(
                [np.abs(csr.h[csr.h != 0]), np.abs(csr.data[csr.data != 0])]
            )
            min_coeff = float(coeffs.min()) if coeffs.size else 1.0
            max_delta = max(max_delta, 1e-9)
            hot = np.log(2.0) / max_delta
            cold = np.log(100.0) / max(min_coeff, 1e-9)
        if num_sweeps == 1:
            return np.array([cold])
        return np.geomspace(max(hot, 1e-12), max(cold, hot * 1.0001), num_sweeps)
