"""Simulated annealing sampler (the classical "SA" baseline / neal stand-in).

Single-spin-flip Metropolis over a QUBO with a geometric inverse-
temperature schedule, vectorised across reads: all ``num_reads``
replicas advance together, so one sweep costs ``num_vars``
matrix-vector products over the replica matrix.

The paper's SA baseline controls runtime exactly like the annealer: a
fixed small number of sweeps per read and a shot count ``s`` that scales
with the runtime budget.
"""

from __future__ import annotations

import numpy as np

from .bqm import BinaryQuadraticModel
from .sampleset import SampleSet

__all__ = ["SimulatedAnnealingSampler"]


class SimulatedAnnealingSampler:
    """Metropolis annealer over binary quadratic models.

    Parameters
    ----------
    beta_range:
        Optional ``(beta_hot, beta_cold)``; derived from the model's
        coefficient magnitudes when omitted (hot enough to accept
        almost any flip, cold enough to freeze the largest bias).
    """

    def __init__(self, beta_range: tuple[float, float] | None = None) -> None:
        self.beta_range = beta_range

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        num_sweeps: int = 100,
        seed: int | None = None,
        initial_states: np.ndarray | None = None,
        beta_schedule: np.ndarray | None = None,
    ) -> SampleSet:
        """Run ``num_reads`` independent anneals of ``num_sweeps`` sweeps.

        ``beta_schedule`` overrides the built-in geometric ramp with an
        explicit per-sweep beta sequence (see
        :mod:`repro.annealing.schedule`); its length supersedes
        ``num_sweeps``.
        """
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if num_sweeps < 1:
            raise ValueError(f"num_sweeps must be >= 1, got {num_sweeps}")
        if beta_schedule is not None:
            beta_schedule = np.asarray(beta_schedule, dtype=float)
            if beta_schedule.ndim != 1 or beta_schedule.size < 1:
                raise ValueError("beta_schedule must be a non-empty 1-D array")
            num_sweeps = int(beta_schedule.size)
        bqm.require_finite()
        rng = np.random.default_rng(seed)
        h, j, offset, order = bqm.to_numpy()
        n = len(order)
        if n == 0:
            return SampleSet.from_states([{}] * num_reads, [offset] * num_reads)
        jsym = j + j.T
        if initial_states is not None:
            states = np.array(initial_states, dtype=float)
            if states.shape != (num_reads, n):
                raise ValueError(
                    f"initial_states must be ({num_reads}, {n}), got {states.shape}"
                )
        else:
            states = rng.integers(0, 2, size=(num_reads, n)).astype(float)
        betas = (
            beta_schedule
            if beta_schedule is not None
            else self._schedule(h, jsym, num_sweeps)
        )
        for beta in betas:
            for i in range(n):
                field = h[i] + states @ jsym[:, i]
                delta = (1.0 - 2.0 * states[:, i]) * field
                accept = (delta <= 0) | (
                    rng.random(num_reads) < np.exp(-beta * np.clip(delta, 0, 700))
                )
                states[accept, i] = 1.0 - states[accept, i]
        energies = bqm.energies(states, order)
        assignments = [
            {v: int(states[r, c]) for c, v in enumerate(order)}
            for r in range(num_reads)
        ]
        result = SampleSet.from_states(assignments, energies.tolist())
        result.info.update(
            {"num_reads": num_reads, "sweeps_per_read": num_sweeps}
        )
        return result

    def _schedule(self, h: np.ndarray, jsym: np.ndarray, num_sweeps: int) -> np.ndarray:
        """Geometric beta ramp sized to the model's energy scale."""
        if self.beta_range is not None:
            hot, cold = self.beta_range
        else:
            # Largest possible single-flip |delta E| bounds the hot end;
            # the smallest non-zero coefficient sets the cold end.
            max_delta = float(np.max(np.abs(h) + np.sum(np.abs(jsym), axis=0)))
            coeffs = np.concatenate([np.abs(h[h != 0]), np.abs(jsym[jsym != 0])])
            min_coeff = float(coeffs.min()) if coeffs.size else 1.0
            max_delta = max(max_delta, 1e-9)
            hot = np.log(2.0) / max_delta
            cold = np.log(100.0) / max(min_coeff, 1e-9)
        if num_sweeps == 1:
            return np.array([cold])
        return np.geomspace(max(hot, 1e-12), max(cold, hot * 1.0001), num_sweeps)
