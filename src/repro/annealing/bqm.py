"""Binary quadratic models (QUBO / Ising).

The annealing stack's model type, equivalent in role to D-Wave's
``dimod.BinaryQuadraticModel`` restricted to what the paper needs:
binary (0/1) variables, linear and quadratic coefficients, a constant
offset, energy evaluation (scalar and vectorised), and conversion to
Ising spin form for hardware-style samplers.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Mapping

import numpy as np

from ..perf.anneal import CSRQuadratic

__all__ = ["BinaryQuadraticModel"]

Variable = Hashable


class BinaryQuadraticModel:
    """``E(x) = offset + sum_i h_i x_i + sum_{i<j} J_ij x_i x_j`` over x in {0,1}.

    Variables are arbitrary hashable labels; iteration order is the
    insertion order, which fixes the column order of
    :meth:`to_numpy` and of samplers' state matrices.
    """

    def __init__(
        self,
        linear: Mapping[Variable, float] | None = None,
        quadratic: Mapping[tuple[Variable, Variable], float] | None = None,
        offset: float = 0.0,
    ) -> None:
        self.linear: dict[Variable, float] = {}
        self.quadratic: dict[tuple[Variable, Variable], float] = {}
        self.offset = float(offset)
        self._index: dict[Variable, int] = {}
        self._csr: CSRQuadratic | None = None
        for v, bias in (linear or {}).items():
            self.add_linear(v, bias)
        for (u, v), bias in (quadratic or {}).items():
            self.add_quadratic(u, v, bias)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, v: Variable) -> None:
        """Register a variable with zero bias if unseen."""
        if v not in self.linear:
            self._index[v] = len(self.linear)
            self.linear[v] = 0.0
            self._csr = None

    def add_linear(self, v: Variable, bias: float) -> None:
        """Accumulate a linear coefficient."""
        self.add_variable(v)
        self.linear[v] += float(bias)
        self._csr = None

    def add_quadratic(self, u: Variable, v: Variable, bias: float) -> None:
        """Accumulate a quadratic coefficient (u != v; key order-free)."""
        if u == v:
            raise ValueError(
                f"diagonal term ({u},{u}): binary x^2 = x, fold into linear"
            )
        self.add_variable(u)
        self.add_variable(v)
        key = self._key(u, v)
        self.quadratic[key] = self.quadratic.get(key, 0.0) + float(bias)
        self._csr = None

    def add_offset(self, value: float) -> None:
        self.offset += float(value)

    def _key(self, u: Variable, v: Variable) -> tuple[Variable, Variable]:
        # Deterministic unordered pair key by insertion index.
        return (u, v) if self._index[u] < self._index[v] else (v, u)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> list[Variable]:
        return list(self.linear)

    @property
    def num_variables(self) -> int:
        return len(self.linear)

    @property
    def num_interactions(self) -> int:
        return len(self.quadratic)

    def interaction_graph_edges(self) -> list[tuple[Variable, Variable]]:
        """Variable pairs with non-zero coupling (for embedding)."""
        return [pair for pair, bias in self.quadratic.items() if bias != 0.0]

    def require_finite(self) -> None:
        """Raise ``ValueError`` if any coefficient is NaN or infinite.

        Samplers call this before annealing: a non-finite bias poisons
        every energy and acceptance probability downstream, and failing
        at submission (as real solver APIs do) is the only point where
        the culprit coefficient can still be named.

        The happy path is one vectorised ``isfinite`` over the cached
        CSR arrays; the per-coefficient Python loop runs only on
        failure, where naming the culprit is worth the walk.
        """
        if math.isfinite(self.offset):
            csr = self.to_csr()
            if bool(np.isfinite(csr.h).all()) and bool(
                np.isfinite(csr.pair_vals).all()
            ):
                return
        if not math.isfinite(self.offset):
            raise ValueError(f"non-finite offset {self.offset}")
        for v, bias in self.linear.items():
            if not math.isfinite(bias):
                raise ValueError(f"non-finite linear bias {bias} on {v!r}")
        for (u, v), bias in self.quadratic.items():
            if not math.isfinite(bias):
                raise ValueError(f"non-finite quadratic bias {bias} on ({u!r}, {v!r})")

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def energy(self, sample: Mapping[Variable, int]) -> float:
        """Objective value of one assignment.

        Routed through the same cached CSR arrays as :meth:`energies`,
        so scalar and vectorised evaluation are exactly — bitwise —
        equal on the same assignment.
        """
        csr = self.to_csr()
        x = np.fromiter(
            (sample[v] for v in csr.order),
            dtype=np.float64,
            count=csr.num_variables,
        )
        return float(csr.energies(x[None, :], self.offset)[0])

    def energies(self, states: np.ndarray, order: list[Variable] | None = None) -> np.ndarray:
        """Vectorised energies for a ``(num_samples, num_vars)`` 0/1 array.

        The default (insertion-order) layout reuses the cached CSR
        arrays — one ``states @ h`` plus one gather-multiply over the
        coupling pairs.  A caller-supplied permuted ``order`` falls back
        to the per-term path.
        """
        states = np.asarray(states, dtype=float)
        if order is None or list(order) == self.variables:
            return self.to_csr().energies(states, self.offset)
        index = {v: i for i, v in enumerate(order)}
        h = np.zeros(len(order))
        for v, bias in self.linear.items():
            h[index[v]] = bias
        energies = states @ h + self.offset
        for (u, v), bias in self.quadratic.items():
            energies += bias * states[:, index[u]] * states[:, index[v]]
        return energies

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> CSRQuadratic:
        """The cached sparse view every sampler runs on.

        Returns the symmetric coupling matrix in CSR form plus the
        ``h`` vector, variable ``order``, and upper-triangular pairs
        (see :class:`repro.perf.anneal.CSRQuadratic`).  Built lazily on
        first use and invalidated by any coefficient mutation
        (``add_variable`` / ``add_linear`` / ``add_quadratic``); the
        offset is read live from the model, so ``add_offset`` does not
        invalidate.
        """
        if self._csr is None:
            order = self.variables
            index = self._index
            n = len(order)
            h = np.fromiter(
                (self.linear[v] for v in order), dtype=np.float64, count=n
            )
            m = len(self.quadratic)
            rows = np.empty(m, dtype=np.int64)
            cols = np.empty(m, dtype=np.int64)
            vals = np.empty(m, dtype=np.float64)
            for pos, ((u, v), bias) in enumerate(self.quadratic.items()):
                a, b = index[u], index[v]
                if a > b:
                    a, b = b, a
                rows[pos] = a
                cols[pos] = b
                vals[pos] = bias
            self._csr = CSRQuadratic.from_pairs(
                n, h, rows, cols, vals, order=tuple(order)
            )
        return self._csr

    def to_numpy(self) -> tuple[np.ndarray, np.ndarray, float, list[Variable]]:
        """``(h, J, offset, order)`` with J strictly upper triangular."""
        order = self.variables
        index = {v: i for i, v in enumerate(order)}
        n = len(order)
        h = np.zeros(n)
        j = np.zeros((n, n))
        for v, bias in self.linear.items():
            h[index[v]] = bias
        for (u, v), bias in self.quadratic.items():
            a, b = sorted((index[u], index[v]))
            j[a, b] += bias
        return h, j, self.offset, order

    def to_ising(self) -> tuple[dict[Variable, float], dict[tuple[Variable, Variable], float], float]:
        """Convert to spin variables ``s = 2x - 1`` in {-1, +1}.

        Returns ``(h_spin, J_spin, offset_spin)`` with
        ``E_qubo(x) == E_ising(s)`` for corresponding assignments.
        """
        h_spin: dict[Variable, float] = {v: 0.0 for v in self.linear}
        j_spin: dict[tuple[Variable, Variable], float] = {}
        offset = self.offset
        for v, bias in self.linear.items():
            # x = (s + 1)/2
            h_spin[v] += bias / 2.0
            offset += bias / 2.0
        for (u, v), bias in self.quadratic.items():
            # x_u x_v = (s_u s_v + s_u + s_v + 1) / 4
            j_spin[(u, v)] = j_spin.get((u, v), 0.0) + bias / 4.0
            h_spin[u] += bias / 4.0
            h_spin[v] += bias / 4.0
            offset += bias / 4.0
        return h_spin, j_spin, offset

    @classmethod
    def from_qubo(cls, qubo: Mapping[tuple[Variable, Variable], float], offset: float = 0.0) -> "BinaryQuadraticModel":
        """Build from a {(u, v): bias} dict; diagonal keys become linear."""
        bqm = cls(offset=offset)
        for (u, v), bias in qubo.items():
            if u == v:
                bqm.add_linear(u, bias)
            else:
                bqm.add_quadratic(u, v, bias)
        return bqm

    def copy(self) -> "BinaryQuadraticModel":
        clone = BinaryQuadraticModel(offset=self.offset)
        clone.linear = dict(self.linear)
        clone.quadratic = dict(self.quadratic)
        clone._index = dict(self._index)
        return clone

    def __repr__(self) -> str:
        return (
            f"BinaryQuadraticModel(vars={self.num_variables}, "
            f"interactions={self.num_interactions}, offset={self.offset})"
        )
