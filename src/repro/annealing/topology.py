"""Quantum annealer hardware topologies.

Real annealers expose sparse qubit-connectivity graphs; logical
problems must be minor-embedded into them (chains of physical qubits per
logical variable — the subject of the paper's Fig. 15).  We provide the
classic **Chimera** family C_m: an ``m x m`` grid of ``K_{4,4}`` unit
cells with inter-cell couplers, which is structurally faithful to
D-Wave hardware while staying easy to reason about, plus a denser
Pegasus-like variant obtained by augmenting Chimera with extra odd
couplers (higher degree => shorter chains, as on real Advantage chips).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareGraph", "chimera_graph", "pegasus_like_graph"]


@dataclass(frozen=True)
class HardwareGraph:
    """A physical qubit-connectivity graph.

    Attributes
    ----------
    num_qubits:
        Physical qubit count (ids ``0..num_qubits-1``).
    adjacency:
        ``adjacency[q]`` is the tuple of qubits coupled to ``q``.
    name:
        Human-readable topology name.
    grid_size, shore_size:
        Chimera-family parameters (``m`` and ``t``) when the topology
        contains a Chimera grid (used by the clique-embedding
        template); 0 when not applicable.
    """

    num_qubits: int
    adjacency: tuple[tuple[int, ...], ...]
    name: str
    grid_size: int = 0
    shore_size: int = 0

    @property
    def num_couplers(self) -> int:
        return sum(len(a) for a in self.adjacency) // 2

    def are_coupled(self, u: int, v: int) -> bool:
        return v in self.adjacency[u]


def _build(
    num_qubits: int,
    edges: set[tuple[int, int]],
    name: str,
    grid_size: int = 0,
    shore_size: int = 0,
) -> HardwareGraph:
    adj: list[list[int]] = [[] for _ in range(num_qubits)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return HardwareGraph(
        num_qubits, tuple(tuple(sorted(a)) for a in adj), name, grid_size, shore_size
    )


def chimera_graph(m: int, t: int = 4) -> HardwareGraph:
    """Chimera C_m with shore size ``t``: ``m*m`` cells of ``K_{t,t}``.

    Qubit id layout: cell ``(row, col)``, side 0 (left shore) or 1,
    index ``0..t-1`` => ``id = ((row * m + col) * 2 + side) * t + index``.

    * intra-cell: every left-shore qubit couples to every right-shore
      qubit of its cell;
    * inter-cell: left shores couple vertically (same column, adjacent
      rows, same index); right shores couple horizontally.
    """
    if m < 1 or t < 1:
        raise ValueError(f"need m >= 1 and t >= 1, got m={m}, t={t}")

    def qid(row: int, col: int, side: int, index: int) -> int:
        return ((row * m + col) * 2 + side) * t + index

    edges: set[tuple[int, int]] = set()
    for row in range(m):
        for col in range(m):
            for i in range(t):
                for jdx in range(t):
                    edges.add((qid(row, col, 0, i), qid(row, col, 1, jdx)))
            if row + 1 < m:
                for i in range(t):
                    edges.add((qid(row, col, 0, i), qid(row + 1, col, 0, i)))
            if col + 1 < m:
                for i in range(t):
                    edges.add((qid(row, col, 1, i), qid(row, col + 1, 1, i)))
    return _build(2 * t * m * m, edges, f"chimera_C{m}(t={t})", m, t)


def pegasus_like_graph(m: int, t: int = 4) -> HardwareGraph:
    """A Pegasus-flavoured topology: Chimera C_m plus odd couplers.

    Adds couplers between consecutive same-shore qubits inside each
    cell and diagonal inter-cell couplers, raising the typical qubit
    degree from 6 toward the ~15 of real Pegasus.  Not the exact
    Pegasus graph, but it reproduces the property the experiments
    depend on: denser hardware => shorter chains for the same problem.
    """
    base = chimera_graph(m, t)

    def qid(row: int, col: int, side: int, index: int) -> int:
        return ((row * m + col) * 2 + side) * t + index

    edges: set[tuple[int, int]] = set()
    for q, neigh in enumerate(base.adjacency):
        for w in neigh:
            edges.add((min(q, w), max(q, w)))
    for row in range(m):
        for col in range(m):
            for side in (0, 1):
                for i in range(t - 1):  # odd couplers within a shore
                    edges.add((qid(row, col, side, i), qid(row, col, side, i + 1)))
            if row + 1 < m and col + 1 < m:  # diagonal cross-cell couplers
                for i in range(t):
                    edges.add((qid(row, col, 1, i), qid(row + 1, col + 1, 0, i)))
    return _build(base.num_qubits, edges, f"pegasus_like_P{m}(t={t})", m, t)
