"""Annealing substrate: QUBO models, samplers, topologies, embedding."""

from .bqm import BinaryQuadraticModel
from .embedding import (
    Embedding,
    EmbeddingError,
    clique_embedding,
    clique_embedding_auto,
    find_embedding,
    suggest_chain_strength,
)
from .hybrid import MIN_RUNTIME_US, HybridSampler, steepest_descent
from .qpu import QPURuntimeExceeded, SimulatedQPUSampler
from .sa import SimulatedAnnealingSampler
from .sampleset import RowAssignment, Sample, SampleSet
from .schedule import (
    geometric_schedule,
    linear_schedule,
    paused_schedule,
    quench_schedule,
)
from .tabu import BatchedTabuResult, batched_tabu, tabu_search
from .topology import HardwareGraph, chimera_graph, pegasus_like_graph

__all__ = [
    "MIN_RUNTIME_US",
    "BatchedTabuResult",
    "BinaryQuadraticModel",
    "Embedding",
    "EmbeddingError",
    "HardwareGraph",
    "HybridSampler",
    "QPURuntimeExceeded",
    "RowAssignment",
    "Sample",
    "SampleSet",
    "SimulatedAnnealingSampler",
    "SimulatedQPUSampler",
    "batched_tabu",
    "chimera_graph",
    "clique_embedding",
    "clique_embedding_auto",
    "find_embedding",
    "geometric_schedule",
    "linear_schedule",
    "paused_schedule",
    "pegasus_like_graph",
    "quench_schedule",
    "steepest_descent",
    "suggest_chain_strength",
    "tabu_search",
]
