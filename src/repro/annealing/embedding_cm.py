"""Cai-Macready-Roy minor embedding with overlap refinement.

The greedy chain-growth heuristic in :mod:`repro.annealing.embedding`
keeps chains strictly disjoint and therefore fails on dense logical
graphs: early chains get walled in.  This module implements the full
heuristic of Cai, Macready & Roy ("A practical heuristic for finding
graph minors", 2014), the algorithm behind D-Wave's ``minorminer``:

1. chains are grown through *weighted* shortest paths where a qubit
   already claimed by other chains costs a large penalty instead of
   being forbidden — overlaps are allowed but expensive;
2. after the initial placement, refinement passes rip out one chain at
   a time and re-route it against the current congestion, with the
   penalty escalating each pass;
3. the embedding is accepted once no qubit is claimed twice.

Shortest paths run through :func:`scipy.sparse.csgraph.dijkstra`
(multi-source, C speed); the vertex-weight model is folded into edge
weights (an edge u -> v costs ``weight(v)``), so re-weighting a pass is
a single numpy gather.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .embedding import Embedding, EmbeddingError
from .topology import HardwareGraph

__all__ = ["find_embedding_cm"]

Variable = Hashable

#: Base congestion penalty; escalates by this factor every pass.
_PENALTY = 1.0e4
_UNREACHABLE = np.inf


class _Router:
    """Shared state for one embedding attempt."""

    def __init__(self, hardware: HardwareGraph, rng: random.Random | None = None) -> None:
        self.hardware = hardware
        self._np_rng = np.random.default_rng(
            None if rng is None else rng.randrange(2**63)
        )
        n = hardware.num_qubits
        rows, cols = [], []
        for q in range(n):
            for w in hardware.adjacency[q]:
                rows.append(q)
                cols.append(w)
        self._rows = np.asarray(rows, dtype=np.int32)
        self._cols = np.asarray(cols, dtype=np.int32)
        self._shape = (n, n)
        self.usage = np.zeros(n, dtype=np.int64)

    def graph(self, penalty: float) -> csr_matrix:
        """CSR matrix with edge u->v costing the vertex weight of v."""
        weights = 1.0 + penalty * self.usage
        data = weights[self._cols]
        return csr_matrix((data, (self._rows, self._cols)), shape=self._shape)

    def route_chain(
        self,
        neighbour_chains: list[set[int]],
        penalty: float,
        rng: random.Random,
    ) -> set[int]:
        """Grow a chain reaching every neighbour chain (CM step).

        Steiner-style sequential routing: seed next to the first
        neighbour chain, then bridge from the *growing* chain to each
        remaining neighbour along congestion-weighted shortest paths.
        Qubits claimed by other chains are allowed but priced at the
        penalty — the CM overlap mechanism, resolved in refinement.
        """
        if not neighbour_chains:
            free = np.flatnonzero(self.usage == 0)
            pool = free if free.size else np.arange(self.hardware.num_qubits)
            return {int(pool[rng.randrange(pool.size)])}
        graph = self.graph(penalty)
        # Bridge in ascending-size order: small chains are hardest to
        # reach (fewest couplers), so connect them first.
        ordered = sorted(neighbour_chains, key=lambda c: (len(c), sorted(c)))

        # Seed: cheapest qubit next to the first neighbour chain.  Any
        # qubit is allowed — even one claimed by another chain; the
        # congestion price plus refinement sorts overlaps out.
        dist, pred, _src = dijkstra(
            graph, directed=True, indices=sorted(ordered[0]),
            return_predecessors=True, min_only=True,
        )
        dist = dist.copy()
        dist[sorted(ordered[0])] = _UNREACHABLE  # seed outside the target
        # Sub-unit jitter breaks ties among equal-cost qubits at random
        # (edge weights are >= 1, so ordering between distinct costs is
        # preserved); without it, rip-up-and-reroute would reproduce the
        # same chain forever and refinement could reach a fixed point.
        root = int(np.argmin(dist + self._np_rng.random(dist.shape) * 0.5))
        if not np.isfinite(dist[root]):
            raise EmbeddingError("first neighbour chain is unreachable")
        chain = {root}
        self._annex_walk(chain, root, pred, ordered[0])

        for target in ordered[1:]:
            if self._touches(chain, target):
                continue
            dist, pred, _src = dijkstra(
                graph, directed=True, indices=sorted(chain),
                return_predecessors=True, min_only=True,
            )
            # Land on any qubit adjacent to the target chain.
            frontier = sorted(
                {
                    q
                    for t in target
                    for q in self.hardware.adjacency[t]
                    if q not in target
                }
            )
            if not frontier:
                raise EmbeddingError("target chain is walled in")
            frontier_dist = dist[frontier]
            best = int(np.argmin(
                frontier_dist + self._np_rng.random(len(frontier)) * 0.5
            ))
            if not np.isfinite(frontier_dist[best]):
                raise EmbeddingError("no route to a neighbour chain")
            landing = frontier[best]
            chain.add(landing)
            self._annex_walk(chain, landing, pred, chain)
        return self._prune(chain, ordered)

    def _prune(self, chain: set[int], neighbour_chains: list[set[int]]) -> set[int]:
        """Iteratively drop chain leaves not needed for any coupling.

        A qubit can go if it has at most one chain-internal neighbour
        (a leaf of the chain's induced subgraph) and its removal does
        not disconnect the chain from any neighbour chain it alone
        couples to.  This keeps rerouted chains from accumulating
        bloat across refinement passes.
        """
        if len(chain) <= 1:
            return chain
        adjacency = self.hardware.adjacency
        changed = True
        while changed and len(chain) > 1:
            changed = False
            for q in sorted(chain):
                internal = sum(1 for w in adjacency[q] if w in chain)
                if internal != 1:
                    continue  # not a leaf (or isolated — keep)
                needed = False
                for target in neighbour_chains:
                    if any(w in target for w in adjacency[q]):
                        others = chain - {q}
                        still = any(
                            any(w in target for w in adjacency[p])
                            for p in others
                        )
                        if not still:
                            needed = True
                            break
                if not needed:
                    chain.discard(q)
                    changed = True
        return chain

    def _annex_walk(
        self, chain: set[int], start: int, pred: np.ndarray, stop_in: set[int]
    ) -> None:
        """Walk predecessors from ``start`` into ``chain`` until hitting
        ``stop_in`` (exclusive)."""
        q = start
        while pred[q] >= 0:
            q = int(pred[q])
            if q in stop_in:
                break
            chain.add(q)

    def _touches(self, a: set[int], b: set[int]) -> bool:
        small, large = (a, b) if len(a) <= len(b) else (b, a)
        return any(w in large for q in small for w in self.hardware.adjacency[q])

    def claim(self, chain: set[int]) -> None:
        self.usage[list(chain)] += 1

    def release(self, chain: set[int]) -> None:
        self.usage[list(chain)] -= 1


def find_embedding_cm(
    variables: Sequence[Variable],
    logical_edges: Sequence[tuple[Variable, Variable]],
    hardware: HardwareGraph,
    seed: int | None = None,
    max_passes: int = 6,
    max_tries: int = 5,
) -> Embedding:
    """Cai-Macready embedding with refinement and random restarts.

    Raises :class:`EmbeddingError` if every restart still has
    overlapping chains after ``max_passes`` refinement passes.
    """
    base = random.Random(seed)
    last: EmbeddingError | None = None
    for _try in range(max_tries):
        try:
            return _attempt(
                variables, logical_edges, hardware,
                random.Random(base.random()), max_passes,
            )
        except EmbeddingError as exc:
            last = exc
    raise EmbeddingError(f"CM router failed {max_tries} restarts: {last}")


def _attempt(
    variables: Sequence[Variable],
    logical_edges: Sequence[tuple[Variable, Variable]],
    hardware: HardwareGraph,
    rng: random.Random,
    max_passes: int,
) -> Embedding:
    neighbours: dict[Variable, set[Variable]] = {v: set() for v in variables}
    for u, v in logical_edges:
        neighbours[u].add(v)
        neighbours[v].add(u)
    order = sorted(variables, key=lambda v: (-len(neighbours[v]), str(v)))

    router = _Router(hardware, rng)
    chains: dict[Variable, set[int]] = {}

    # Initial pass: overlaps tolerated at base penalty.
    for var in order:
        placed = [chains[w] for w in sorted(neighbours[var], key=str) if w in chains]
        chain = router.route_chain(placed, _PENALTY, rng)
        chains[var] = chain
        router.claim(chain)

    # Refinement passes with escalating penalties; bail early when the
    # overlap count stops improving (the fallback path is cheaper than
    # grinding a stuck refinement).
    penalty = _PENALTY
    overlap_history: list[int] = []
    for _pass in range(max_passes):
        overused_now = int((router.usage > 1).sum())
        if overused_now == 0:
            break
        overlap_history.append(overused_now)
        if len(overlap_history) >= 3 and overlap_history[-1] >= overlap_history[-3]:
            break
        penalty *= 8.0
        for var in order:
            router.release(chains[var])
            placed = [
                chains[w]
                for w in sorted(neighbours[var], key=str)
                if w is not var and w in chains
            ]
            chain = router.route_chain(placed, penalty, rng)
            chains[var] = chain
            router.claim(chain)

    # Targeted cleanup: rip up *every* owner of an overused qubit at
    # once and reroute them against each other in random order —
    # rerouting one owner at a time just recreates the same conflict.
    for _round in range(4 * len(variables)):
        overused = np.flatnonzero(router.usage > 1)
        if overused.size == 0:
            break
        qubit = int(overused[rng.randrange(overused.size)])
        owners = [v for v, c in chains.items() if qubit in c]
        rng.shuffle(owners)
        for victim in owners:
            router.release(chains[victim])
            chains.pop(victim)
        for victim in owners:
            placed = [
                chains[w]
                for w in sorted(neighbours[victim], key=str)
                if w in chains
            ]
            chain = router.route_chain(placed, penalty * 100.0, rng)
            chains[victim] = chain
            router.claim(chain)

    if int(router.usage.max(initial=0)) > 1:
        raise EmbeddingError(
            f"overlaps remain after {max_passes} refinement passes"
        )
    emb = Embedding({v: tuple(sorted(c)) for v, c in chains.items()}, hardware)
    emb.validate(list(logical_edges))
    return emb
