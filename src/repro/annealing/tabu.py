"""Tabu search over binary quadratic models.

Single-flip tabu search with incremental delta-energy maintenance and
the standard aspiration criterion (a tabu flip is allowed if it beats
the incumbent).  This is the workhorse of D-Wave's hybrid solvers;
combined with SA seeding it reliably digs the MKP QUBOs' optima out of
their penalty barriers, which plain SA cannot at comparable budgets.

Complexity: a flip costs O(degree) to refresh the delta table, so
``iterations`` flips cost about ``iterations * average_degree``.
"""

from __future__ import annotations

import numpy as np

from .bqm import BinaryQuadraticModel

__all__ = ["tabu_search"]


def tabu_search(
    bqm: BinaryQuadraticModel,
    initial: dict[object, int] | None = None,
    iterations: int = 5000,
    tenure: int | None = None,
    seed: int | None = None,
) -> tuple[dict[object, int], float]:
    """Minimise ``bqm``; returns ``(best_assignment, best_energy)``.

    Parameters
    ----------
    initial:
        Starting assignment (random when omitted).
    iterations:
        Number of flips to perform.
    tenure:
        Tabu tenure; defaults to ``min(20, num_vars // 4 + 1)``.
    """
    rng = np.random.default_rng(seed)
    h, j, offset, order = bqm.to_numpy()
    n = len(order)
    if n == 0:
        return {}, float(offset)
    if tenure is None:
        tenure = min(20, n // 4 + 1)
    jsym = j + j.T

    if initial is not None:
        x = np.array([initial[v] for v in order], dtype=float)
    else:
        x = rng.integers(0, 2, size=n).astype(float)

    # delta[i] = energy change if variable i flips.
    field = h + jsym @ x
    delta = (1.0 - 2.0 * x) * field
    energy = float(bqm.energies(x[None, :], order)[0])
    best_energy = energy
    best_x = x.copy()
    tabu_until = np.zeros(n, dtype=np.int64)

    for step in range(1, iterations + 1):
        candidate_energy = energy + delta
        allowed = (tabu_until < step) | (candidate_energy < best_energy - 1e-12)
        if not np.any(allowed):
            allowed[:] = True
        scores = np.where(allowed, delta, np.inf)
        i = int(np.argmin(scores))
        # flip i
        sign = 1.0 - 2.0 * x[i]           # +1 if flipping 0 -> 1
        x[i] += sign
        energy += delta[i]
        # refresh the delta table: own entry negates; neighbours shift.
        delta[i] = -delta[i]
        coupled = jsym[i]
        shift = (1.0 - 2.0 * x) * coupled * sign
        shift[i] = 0.0
        delta += shift
        tabu_until[i] = step + tenure
        if energy < best_energy - 1e-12:
            best_energy = energy
            best_x = x.copy()

    assignment = {v: int(best_x[c]) for c, v in enumerate(order)}
    return assignment, float(best_energy)
