"""Tabu search over binary quadratic models.

Single-flip tabu search with incremental delta-energy maintenance and
the standard aspiration criterion (a tabu flip is allowed if it beats
the incumbent).  This is the workhorse of D-Wave's hybrid solvers;
combined with SA seeding it reliably digs the MKP QUBOs' optima out of
their penalty barriers, which plain SA cannot at comparable budgets.

The engine is batched: :func:`batched_tabu` advances ``num_restarts``
trajectories as one matrix on the sparse kernels in
:mod:`repro.perf.anneal` — per-replica delta tables, tabu clocks, and
aspiration, with a flip costing ``O(degree)`` neighbour updates per
replica.  :func:`tabu_search` is the single-trajectory view kept for
callers that want one ``(assignment, energy)``; with one replica the
batched kernel reproduces the historical single-loop trajectory
flip-for-flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import NULL_TRACER
from ..perf.anneal import tabu_descend
from .bqm import BinaryQuadraticModel

__all__ = ["BatchedTabuResult", "batched_tabu", "tabu_search"]


@dataclass
class BatchedTabuResult:
    """Per-replica outcome of a :func:`batched_tabu` run."""

    assignments: list[dict]
    energies: np.ndarray
    info: dict = field(default_factory=dict)

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.energies))

    @property
    def best_assignment(self) -> dict:
        return self.assignments[self.best_index]

    @property
    def best_energy(self) -> float:
        return float(self.energies[self.best_index])


def batched_tabu(
    bqm: BinaryQuadraticModel,
    num_restarts: int = 1,
    initial_states=None,
    iterations: int = 5000,
    tenure: int | None = None,
    seed: int | None = None,
    tracer=None,
    kernel: str | None = None,
    _record_flips: list | None = None,
) -> BatchedTabuResult:
    """Run ``num_restarts`` tabu trajectories as one replica matrix.

    Parameters
    ----------
    initial_states:
        A list of assignment dicts or a ``(num_restarts, n)`` 0/1 array;
        random starts when omitted.
    iterations:
        Flips per replica (every step flips exactly one variable per
        replica, so the total flip budget is ``num_restarts *
        iterations``).
    tenure:
        Tabu tenure; defaults to ``min(20, num_vars // 4 + 1)``.
    tracer:
        Optional :class:`repro.obs.Tracer`; opens one ``anneal.tabu``
        span whose step/flip counters the run ledger reconciles against
        ``info``.
    kernel:
        Kernel-backend name (:mod:`repro.perf.kernels`); None honours
        ``REPRO_KERNEL``.  All backends flip identically.
    _record_flips:
        Test hook — a list that receives the chosen variable index per
        replica for every step (the flip-for-flip evidence the
        seed-equivalence suite compares).
    """
    if num_restarts < 1:
        raise ValueError(f"num_restarts must be >= 1, got {num_restarts}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    bqm.require_finite()
    tracer = tracer or NULL_TRACER
    rng = np.random.default_rng(seed)
    csr = bqm.to_csr()
    order = list(csr.order)
    n = csr.num_variables
    if tenure is None:
        tenure = min(20, n // 4 + 1)
    if n == 0:
        return BatchedTabuResult(
            assignments=[{} for _ in range(num_restarts)],
            energies=np.full(num_restarts, float(bqm.offset)),
            info={
                "num_restarts": num_restarts,
                "iterations": iterations,
                "tenure": tenure,
                "num_flips": 0,
            },
        )
    if initial_states is not None:
        if isinstance(initial_states, np.ndarray):
            x = initial_states.astype(np.int8)
        else:
            x = np.array(
                [[assignment[v] for v in order] for assignment in initial_states],
                dtype=np.int8,
            )
        if x.shape != (num_restarts, n):
            raise ValueError(
                f"initial_states must be ({num_restarts}, {n}), got {x.shape}"
            )
    else:
        x = rng.integers(0, 2, size=(num_restarts, n)).astype(np.int8)
    energies = bqm.energies(x, order)
    total_flips = iterations * num_restarts
    with tracer.span(
        "anneal.tabu",
        num_restarts=num_restarts,
        iterations=iterations,
        num_variables=n,
    ) as span:
        best_x, best_energy = tabu_descend(
            csr.h, csr.indptr, csr.indices, csr.data,
            x, energies, iterations, tenure, record_flips=_record_flips,
            kernel=kernel,
        )
        tracer.add("anneal_tabu_steps", iterations)
        tracer.add("anneal_tabu_flips", total_flips)
        span.claim("anneal_tabu_steps", iterations)
        span.claim("anneal_tabu_flips", total_flips)
    assignments = [
        {v: int(best_x[r, c]) for c, v in enumerate(order)}
        for r in range(num_restarts)
    ]
    return BatchedTabuResult(
        assignments=assignments,
        energies=best_energy,
        info={
            "num_restarts": num_restarts,
            "iterations": iterations,
            "tenure": tenure,
            "num_flips": total_flips,
        },
    )


def tabu_search(
    bqm: BinaryQuadraticModel,
    initial: dict[object, int] | None = None,
    iterations: int = 5000,
    tenure: int | None = None,
    seed: int | None = None,
    tracer=None,
    kernel: str | None = None,
) -> tuple[dict[object, int], float]:
    """Minimise ``bqm``; returns ``(best_assignment, best_energy)``.

    Single-trajectory view over :func:`batched_tabu` with one replica —
    same flip sequence as the historical standalone loop (first-minimum
    tie-break, 1e-12 aspiration slack, same RNG stream for random
    starts).

    Parameters
    ----------
    initial:
        Starting assignment (random when omitted).
    iterations:
        Number of flips to perform.
    tenure:
        Tabu tenure; defaults to ``min(20, num_vars // 4 + 1)``.
    """
    if bqm.num_variables == 0:
        return {}, float(bqm.offset)
    result = batched_tabu(
        bqm,
        num_restarts=1,
        initial_states=None if initial is None else [initial],
        iterations=iterations,
        tenure=tenure,
        seed=seed,
        tracer=tracer,
        kernel=kernel,
    )
    return result.assignments[0], float(result.energies[0])
