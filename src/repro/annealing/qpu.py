"""Simulated quantum annealer (the D-Wave Advantage stand-in).

Reproduces the *workflow and failure modes* of a physical QPU rather
than its quantum dynamics:

1. the logical QUBO is minor-embedded (greedy chain growth, clique
   template fallback; if the configured chip cannot fit the problem,
   the template is laid out on the smallest Chimera grid that can —
   the real-world "move to a bigger chip" step, flagged in the result
   info);
2. per-shot annealing time ``delta_t_us`` maps to Metropolis sweeps
   (``sweeps_per_us`` each), and ``num_reads`` plays D-Wave's role —
   total QPU runtime is ``delta_t_us * num_reads`` (the paper's
   ``t = Delta t * s``), subject to the per-call access cap that
   stopped the paper's QPU curves around 10^4 us;
3. execution happens in one of two modes:

   * ``"physical"`` — the embedded model is annealed qubit-by-qubit:
     chain penalties ``strength * (x_p - x_q)^2``, per-shot Gaussian
     control noise, majority-vote unembedding, measured chain-break
     fraction.  Exact but only tractable for small embeddings.
   * ``"logical"`` — the logical model is annealed directly and chain
     breaks are *injected*: each variable's value is randomised with a
     probability growing in its chain length (a broken chain resolves
     by majority vote of a split chain, i.e. noise).  This preserves
     the phenomenology the paper measures — fast early convergence and
     degradation as embeddings grow (Figs. 13-15) — at a cost
     independent of the physical qubit count.
   * ``"auto"`` (default) picks physical when the embedding uses at
     most ``physical_qubit_budget`` qubits, logical otherwise.
"""

from __future__ import annotations

import numpy as np

from .bqm import BinaryQuadraticModel
from .embedding import (
    Embedding,
    EmbeddingError,
    clique_embedding_auto,
    find_embedding,
    suggest_chain_strength,
)
from .sa import SimulatedAnnealingSampler
from .sampleset import SampleSet
from .topology import HardwareGraph, chimera_graph

__all__ = ["QPURuntimeExceeded", "SimulatedQPUSampler"]


def _gauge_transform(
    bqm: BinaryQuadraticModel, flips: set
) -> BinaryQuadraticModel:
    """Apply the substitution ``x_v -> 1 - x_v`` for ``v in flips``.

    Returns a model with identical energies under the flipped
    interpretation: sampling the transform and un-flipping the results
    is equivalent to sampling the original, but hardware bias errors
    enter with randomised signs.
    """
    out = BinaryQuadraticModel(offset=bqm.offset)
    for v in bqm.variables:
        out.add_variable(v)
    for v, bias in bqm.linear.items():
        if v in flips:
            out.add_offset(bias)
            out.add_linear(v, -bias)
        else:
            out.add_linear(v, bias)
    for (u, v), bias in bqm.quadratic.items():
        fu, fv = u in flips, v in flips
        if fu and fv:
            # (1-x_u)(1-x_v) = 1 - x_u - x_v + x_u x_v
            out.add_offset(bias)
            out.add_linear(u, -bias)
            out.add_linear(v, -bias)
            out.add_quadratic(u, v, bias)
        elif fu:
            # (1-x_u) x_v = x_v - x_u x_v
            out.add_linear(v, bias)
            out.add_quadratic(u, v, -bias)
        elif fv:
            out.add_linear(u, bias)
            out.add_quadratic(u, v, -bias)
        else:
            out.add_quadratic(u, v, bias)
    return out


class QPURuntimeExceeded(ValueError):
    """Requested runtime exceeds the per-call cap (as on real hardware).

    Carries the request and the cap so budget-aware callers (the
    resilience layer) can clamp their next attempt instead of guessing.
    """

    def __init__(
        self,
        message: str,
        requested_us: float | None = None,
        cap_us: float | None = None,
    ) -> None:
        super().__init__(message)
        self.requested_us = requested_us
        self.cap_us = cap_us


class SimulatedQPUSampler:
    """QPU-style sampler: embed, anneal, unembed.

    Parameters
    ----------
    hardware:
        Target topology; defaults to a Chimera C16 (2048 qubits).
    sweeps_per_us:
        Metropolis sweeps corresponding to one microsecond of anneal.
    noise_scale:
        Std-dev of the relative Gaussian control noise on biases
        (physical mode).
    chain_break_per_link:
        Per-chain-link break probability (logical mode): a chain of
        length L breaks with probability ``1 - (1 - p)^(L-1)``.
    max_call_time_us:
        Per-call runtime cap; ``None`` disables it.
    physical_qubit_budget:
        Auto-mode threshold between physical and logical execution.
    allow_hardware_expansion:
        When the embedding heuristic fails on the configured chip, the
        default behaviour auto-expands to a bigger clique template (the
        "move to a larger chip" step).  Set ``False`` to model a fixed
        chip: :class:`EmbeddingError` then propagates to the caller,
        exactly as the real solver API reports an unembeddable problem.
    """

    def __init__(
        self,
        hardware: HardwareGraph | None = None,
        sweeps_per_us: float = 2.0,
        noise_scale: float = 0.02,
        chain_break_per_link: float = 0.03,
        max_call_time_us: float | None = 2.0e4,
        physical_qubit_budget: int = 600,
        allow_hardware_expansion: bool = True,
    ) -> None:
        self.hardware = hardware or chimera_graph(16)
        self.sweeps_per_us = sweeps_per_us
        self.noise_scale = noise_scale
        self.chain_break_per_link = chain_break_per_link
        self.max_call_time_us = max_call_time_us
        self.physical_qubit_budget = physical_qubit_budget
        self.allow_hardware_expansion = allow_hardware_expansion
        self._embedding_cache: dict[int, tuple[Embedding, bool]] = {}

    def max_reads(self, annealing_time_us: float) -> int | None:
        """Largest ``num_reads`` the per-call cap admits (None = no cap)."""
        if self.max_call_time_us is None:
            return None
        return max(0, int(self.max_call_time_us // annealing_time_us))

    # ------------------------------------------------------------------
    def embed(
        self, bqm: BinaryQuadraticModel, seed: int | None = None
    ) -> Embedding:
        """Embed (cached); falls back to an auto-sized clique template."""
        return self._embed_with_flag(bqm, seed)[0]

    def _embed_with_flag(
        self, bqm: BinaryQuadraticModel, seed: int | None = None
    ) -> tuple[Embedding, bool]:
        key = hash(
            (
                tuple(sorted(map(str, bqm.variables))),
                tuple(sorted((str(u), str(v)) for u, v in bqm.interaction_graph_edges())),
            )
        )
        if key not in self._embedding_cache:
            try:
                emb = find_embedding(
                    bqm.variables,
                    bqm.interaction_graph_edges(),
                    self.hardware,
                    seed=seed,
                )
                expanded = False
            except EmbeddingError:
                if not self.allow_hardware_expansion:
                    raise
                emb = clique_embedding_auto(bqm.variables)
                expanded = True
            self._embedding_cache[key] = (emb, expanded)
        return self._embedding_cache[key]

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        annealing_time_us: float = 1.0,
        num_reads: int = 100,
        chain_strength: float | None = None,
        seed: int | None = None,
        embedding: Embedding | None = None,
        mode: str = "auto",
        num_spin_reversal_transforms: int = 0,
    ) -> SampleSet:
        """Anneal ``num_reads`` shots of ``annealing_time_us`` each.

        ``num_spin_reversal_transforms`` splits the shots across random
        gauge transforms: each block flips a random subset of variables
        (``x -> 1 - x``, adjusting biases so energies are unchanged),
        samples, and flips back.  This is the standard D-Wave technique
        for averaging out bias-leakage control errors; it only affects
        physical-mode noise, never the logical energies reported.
        """
        if annealing_time_us <= 0:
            raise ValueError(f"annealing_time_us must be > 0, got {annealing_time_us}")
        if num_reads < 1:
            raise ValueError(f"num_reads must be >= 1, got {num_reads}")
        if mode not in ("auto", "physical", "logical"):
            raise ValueError(f"mode must be auto/physical/logical, got {mode!r}")
        bqm.require_finite()
        total_us = annealing_time_us * num_reads
        if self.max_call_time_us is not None and total_us > self.max_call_time_us:
            raise QPURuntimeExceeded(
                f"requested {total_us} us exceeds the per-call cap of "
                f"{self.max_call_time_us} us",
                requested_us=total_us,
                cap_us=self.max_call_time_us,
            )
        rng = np.random.default_rng(seed)
        if embedding is not None:
            emb, expanded = embedding, False
        else:
            emb, expanded = self._embed_with_flag(bqm, seed=seed)
        if mode == "auto":
            mode = (
                "physical"
                if emb.num_physical_qubits <= self.physical_qubit_budget
                else "logical"
            )
        strength = chain_strength or suggest_chain_strength(bqm.linear, bqm.quadratic)
        sweeps = max(1, int(round(annealing_time_us * self.sweeps_per_us)))
        if num_spin_reversal_transforms > 0:
            result = self._sample_with_gauges(
                bqm, emb, strength, sweeps, num_reads, rng, seed, mode,
                num_spin_reversal_transforms,
            )
        elif mode == "physical":
            result = self._sample_physical(bqm, emb, strength, sweeps, num_reads, rng, seed)
        else:
            result = self._sample_logical(bqm, emb, sweeps, num_reads, rng, seed)
        result.info.update(
            {
                "annealing_time_us": annealing_time_us,
                "num_reads": num_reads,
                "total_runtime_us": total_us,
                "sweeps_per_read": sweeps,
                "chain_strength": strength,
                "average_chain_length": emb.average_chain_length,
                "num_physical_qubits": emb.num_physical_qubits,
                "execution_mode": mode,
                "hardware_expanded": expanded,
            }
        )
        return result

    # ------------------------------------------------------------------
    # Spin-reversal (gauge) transforms
    # ------------------------------------------------------------------
    def _sample_with_gauges(
        self,
        bqm: BinaryQuadraticModel,
        emb: Embedding,
        strength: float,
        sweeps: int,
        num_reads: int,
        rng: np.random.Generator,
        seed: int | None,
        mode: str,
        num_gauges: int,
    ) -> SampleSet:
        blocks = max(1, num_gauges)
        reads_per_block = max(1, num_reads // blocks)
        all_samples: list = []
        break_fractions: list[float] = []
        for block in range(blocks):
            flips = {
                v for v in bqm.variables if rng.random() < 0.5
            }
            gauged = _gauge_transform(bqm, flips)
            block_seed = None if seed is None else seed + 7 * block
            if mode == "physical":
                raw = self._sample_physical(
                    gauged, emb, strength, sweeps, reads_per_block, rng, block_seed
                )
            else:
                raw = self._sample_logical(
                    gauged, emb, sweeps, reads_per_block, rng, block_seed
                )
            break_fractions.append(float(raw.info.get("chain_break_fraction", 0.0)))
            for sample in raw.samples:
                for _ in range(sample.num_occurrences):
                    undone = {
                        v: (1 - x if v in flips else x)
                        for v, x in sample.assignment.items()
                    }
                    all_samples.append(undone)
        energies = [bqm.energy(a) for a in all_samples]
        out = SampleSet.from_states(all_samples, energies)
        out.info["chain_break_fraction"] = (
            sum(break_fractions) / len(break_fractions) if break_fractions else 0.0
        )
        out.info["num_spin_reversal_transforms"] = blocks
        return out

    # ------------------------------------------------------------------
    # Physical mode
    # ------------------------------------------------------------------
    def _sample_physical(
        self,
        bqm: BinaryQuadraticModel,
        emb: Embedding,
        strength: float,
        sweeps: int,
        num_reads: int,
        rng: np.random.Generator,
        seed: int | None,
    ) -> SampleSet:
        physical = self._embed_bqm(bqm, emb, strength, rng)
        sampler = SimulatedAnnealingSampler()
        raw = sampler.sample(
            physical,
            num_reads=num_reads,
            num_sweeps=sweeps,
            seed=None if seed is None else seed + 1,
        )
        return self._unembed(bqm, emb, raw, rng)

    def _embed_bqm(
        self,
        bqm: BinaryQuadraticModel,
        emb: Embedding,
        strength: float,
        rng: np.random.Generator,
    ) -> BinaryQuadraticModel:
        physical = BinaryQuadraticModel(offset=bqm.offset)
        noise = lambda: 1.0 + rng.normal(0.0, self.noise_scale)  # noqa: E731
        for var, bias in bqm.linear.items():
            chain = emb.chains[var]
            share = bias / len(chain)
            for q in chain:
                if share:
                    physical.add_linear(q, share * noise())
                else:
                    physical.add_variable(q)
        for (u, v), bias in bqm.quadratic.items():
            if bias == 0.0:
                continue
            couplers = [
                (p, q)
                for p in emb.chains[u]
                for q in emb.chains[v]
                if emb.hardware.are_coupled(p, q)
            ]
            share = bias / len(couplers)
            for p, q in couplers:
                physical.add_quadratic(p, q, share * noise())
        # Ferromagnetic chain penalties: strength * (x_p - x_q)^2 along
        # the intra-chain couplers.
        for var, chain in emb.chains.items():
            members = set(chain)
            for p in chain:
                for q in emb.hardware.adjacency[p]:
                    if q in members and p < q:
                        physical.add_linear(p, strength)
                        physical.add_linear(q, strength)
                        physical.add_quadratic(p, q, -2.0 * strength)
        return physical

    def _unembed(
        self,
        bqm: BinaryQuadraticModel,
        emb: Embedding,
        raw: SampleSet,
        rng: np.random.Generator,
    ) -> SampleSet:
        assignments = []
        broken_chains = 0
        total_chains = 0
        for sample in raw.samples:
            for _ in range(sample.num_occurrences):
                logical: dict[object, int] = {}
                for var, chain in emb.chains.items():
                    ones = sum(sample.assignment[q] for q in chain)
                    total_chains += 1
                    if 0 < ones < len(chain):
                        broken_chains += 1
                    if ones * 2 == len(chain):
                        logical[var] = int(rng.integers(0, 2))
                    else:
                        logical[var] = int(ones * 2 > len(chain))
                assignments.append(logical)
        energies = [bqm.energy(a) for a in assignments]
        out = SampleSet.from_states(assignments, energies)
        out.info["chain_break_fraction"] = (
            broken_chains / total_chains if total_chains else 0.0
        )
        return out

    # ------------------------------------------------------------------
    # Logical mode (chain-noise model)
    # ------------------------------------------------------------------
    def _sample_logical(
        self,
        bqm: BinaryQuadraticModel,
        emb: Embedding,
        sweeps: int,
        num_reads: int,
        rng: np.random.Generator,
        seed: int | None,
    ) -> SampleSet:
        order = bqm.variables
        break_probs = np.array(
            [
                1.0 - (1.0 - self.chain_break_per_link) ** (len(emb.chains[v]) - 1)
                for v in order
            ]
        )
        sampler = SimulatedAnnealingSampler()
        raw = sampler.sample(
            bqm,
            num_reads=num_reads,
            num_sweeps=sweeps,
            seed=None if seed is None else seed + 1,
        )
        states = []
        for sample in raw.samples:
            for _ in range(sample.num_occurrences):
                states.append([sample.assignment[v] for v in order])
        states = np.array(states, dtype=float)
        breaks = rng.random(states.shape) < break_probs[None, :]
        random_bits = rng.integers(0, 2, size=states.shape)
        states = np.where(breaks, random_bits, states)
        energies = bqm.energies(states, order)
        assignments = [
            {v: int(states[r, c]) for c, v in enumerate(order)}
            for r in range(states.shape[0])
        ]
        out = SampleSet.from_states(assignments, energies.tolist())
        out.info["chain_break_fraction"] = float(breaks.mean())
        return out
