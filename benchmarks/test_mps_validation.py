"""Extension bench — the paper's methodology, reproduced literally.

The authors ran qTKP on IBM's MPS simulator.  This bench runs the
*complete* qTKP circuit — vertex register, edge qubits, counters,
comparators, oracle qubit, uncompute; no phase-oracle shortcut — on our
own MPS simulator and checks it against the reduced backend:

* n = 4 instance: full validation across all 16 basis states;
* the Fig. 1 graph (96 qubits): one Grover round, solution probability
  compared against the closed form.

The observed bond dimension stays tiny (the Grover state is a rank-2
superposition of |solution> and |uniform>), which is exactly why the
MPS methodology scales to the paper's 90+ qubit circuits.
"""

import numpy as np
import pytest

from conftest import emit
from repro.analysis import format_table
from repro.core.oracle import KCplexOracle
from repro.graphs import gnm_random_graph
from repro.grover import PhaseOracleGrover, grover_circuit, success_probability
from repro.quantum import QuantumCircuit
from repro.quantum.mps import simulate_mps


def _full_circuit(graph, k, threshold, iterations):
    oracle = KCplexOracle(graph.complement(), k, threshold)
    circuit = grover_circuit(
        graph.num_vertices, oracle.phase_oracle_circuit(), iterations
    )
    full = QuantumCircuit(circuit.num_qubits)
    oracle_qubit = oracle.num_qubits
    full.x(oracle_qubit)
    full.h(oracle_qubit)
    full.extend(circuit)
    return oracle, full


def test_mps_full_circuit_validation(benchmark, fig1):
    # --- n = 4: exhaustive agreement -----------------------------------
    g4 = gnm_random_graph(4, 4, seed=0)
    oracle4, full4 = _full_circuit(g4, 2, 3, iterations=1)
    engine4 = PhaseOracleGrover(4, oracle4.predicate)

    mps4 = benchmark(lambda: simulate_mps(full4))
    marginal = mps4.marginal_probabilities([0, 1, 2, 3])
    reduced = engine4.run(1)
    for mask in range(16):
        assert marginal.get(mask, 0.0) == pytest.approx(
            float(reduced.amplitudes[mask] ** 2), abs=1e-8
        )

    # --- Fig. 1 graph: one round of the 96-qubit circuit ----------------
    oracle6, full6 = _full_circuit(fig1, 2, 4, iterations=1)
    engine6 = PhaseOracleGrover(6, oracle6.predicate)
    mps6 = simulate_mps(full6)
    solution = next(iter(engine6.marked))
    marginal6 = mps6.marginal_probabilities([0, 1, 2, 3, 4, 5])
    expected = success_probability(64, 1, 1)
    assert marginal6.get(solution, 0.0) == pytest.approx(expected, abs=1e-7)

    emit(
        "mps_validation",
        format_table(
            ["experiment", "qubits simulated", "gates", "max bond",
             "P(solution)", "matches reduction"],
            [
                ("n=4 full oracle", full4.num_qubits, full4.num_gates,
                 mps4.max_bond_reached, f"{reduced.success_probability:.4f}", "yes"),
                ("Fig.1 graph, 1 round", full6.num_qubits, full6.num_gates,
                 mps6.max_bond_reached, f"{expected:.4f}", "yes"),
            ],
            title="MPS validation: the paper's simulator methodology, "
            "run on the complete circuits",
        ),
    )
