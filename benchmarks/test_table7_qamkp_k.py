"""E10 — Table VII: qaMKP cost vs runtime across k on D_20_100.

The paper fixes R = 2, Delta-t = 1 us and varies k in {2, 3, 4, 5}
while scaling the budget from 1 to 4000 us.  Findings checked: cost
decreases with runtime for every k, and no systematic ordering across
k emerges (qaMKP explores the same 2^n space regardless of k).
"""

import numpy as np

from conftest import emit
from repro.analysis import format_table
from repro.core import qamkp

KS = (2, 3, 4, 5)
BUDGETS_US = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 4_000.0)


def test_table7_qamkp_varying_k(benchmark, annealing_graphs, qpu):
    g = annealing_graphs["D_20_100"]

    benchmark(
        lambda: qamkp(g, 4, runtime_us=100.0, solver="qpu", qpu=qpu, seed=3)
    )

    rows = []
    for k in KS:
        costs = []
        for budget in BUDGETS_US:
            result = qamkp(
                g, k, runtime_us=budget, delta_t_us=1.0,
                solver="qpu", qpu=qpu, seed=17,
            )
            costs.append(result.cost)
        # Cost clearly decreases with runtime for every k (allowing
        # sampling jitter between neighbouring budgets).
        assert costs[-1] < costs[0]
        assert min(costs[4:]) <= min(costs[:3])
        rows.append((k, *[f"{c:.0f}" for c in costs]))

    # No strong k ordering: the best-cost column should not be strictly
    # monotone in k in either direction.
    finals = [float(r[-1]) for r in rows]
    strictly_increasing = all(a < b for a, b in zip(finals, finals[1:]))
    strictly_decreasing = all(a > b for a, b in zip(finals, finals[1:]))
    assert not (strictly_increasing and strictly_decreasing)

    emit(
        "table7_qamkp_k",
        format_table(
            ["k"] + [f"{int(b)} us" for b in BUDGETS_US],
            rows,
            title="Table VII: qaMKP cost vs runtime for k = 2..5 on "
            "D_20_100 (R=2, Delta-t=1 us)",
        ),
    )
