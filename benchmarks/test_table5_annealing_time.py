"""E6 — Table V: objective cost vs per-shot annealing time Delta-t.

With a fixed total budget t = Delta-t * s = 1000 us, the paper sweeps
Delta-t over {1, 10, 20, 40, 100, 200} us on the four D instances
(k = 3, R = 2) and finds the best cost consistently at Delta-t = 1 us:
short anneals with many shots beat long anneals with few.

Shape criterion asserted: on every instance the Delta-t = 1 us column
attains the row minimum (ties allowed).
"""

from conftest import emit
from repro.analysis import format_table
from repro.core import qamkp

BUDGET_US = 1000.0
DELTA_TS = (1.0, 10.0, 20.0, 40.0, 100.0, 200.0)
INSTANCES = ("D_10_40", "D_15_70", "D_20_100", "D_30_300")


def test_table5_annealing_time(benchmark, annealing_graphs, qpu):
    def one_cell():
        return qamkp(
            annealing_graphs["D_20_100"], 3, runtime_us=BUDGET_US,
            delta_t_us=10.0, solver="qpu", qpu=qpu, seed=0,
        )

    benchmark(one_cell)

    rows = []
    for name in INSTANCES:
        g = annealing_graphs[name]
        costs = []
        for delta_t in DELTA_TS:
            result = qamkp(
                g, 3, runtime_us=BUDGET_US, delta_t_us=delta_t,
                solver="qpu", qpu=qpu, seed=42,
            )
            costs.append(result.cost)
        # Delta-t = 1 us attains (or sampling-noise-ties) the row
        # minimum and never loses to the largest Delta-t.  The paper
        # notes the same kind of exceptions from shot-count variance.
        spread = max(costs) - min(costs)
        assert costs[0] <= min(costs) + 0.05 * spread + 1e-9, (
            f"{name}: Delta-t = 1 us should attain the row minimum"
        )
        assert costs[0] <= costs[-1] + 1e-9
        rows.append((name, *[f"{c:.0f}" for c in costs]))

    emit(
        "table5_annealing_time",
        format_table(
            ["dataset"] + [f"{int(dt)} us" for dt in DELTA_TS],
            rows,
            title="Table V: qaMKP cost vs annealing time Delta-t "
            f"(k=3, R=2, total budget {BUDGET_US:.0f} us)",
        ),
    )
