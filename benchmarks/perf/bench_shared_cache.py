"""Perf harness for the fleet-shared marked-set table store.

Two blocks, emitted as ``BENCH_qmkp_shared_cache.json``:

* ``fleet`` (gated) — a batch of identical enumeration jobs spread
  across real OS worker processes, baseline (every job cold-sweeps all
  ``2^n`` masks itself) versus shared (the first job cold-builds and
  publishes one mmap-backed segment, every later job zero-copy
  attaches).  The amortized per-job speedup — total baseline job time
  over total shared job time — must clear ``--min-speedup`` (default
  5x), and every job in both arms must produce a byte-identical table
  (same ``_by_size`` bytes, same offsets; checked by digest).

  The sweep kernel defaults to the plain-numpy tier so the cold arm's
  cost is deterministic across hosts; the shared arm's attach cost is
  an mmap + header parse and does not depend on the kernel at all.

* ``service`` (byte-identity gate, timings recorded for context) — the
  same batch shape end to end through the real
  :class:`repro.service.Supervisor`: identical qMKP jobs across worker
  subprocesses with and without ``shared_cache_dir``.  Every answer and
  receipt ledger must match between the arms bit for bit — the shared
  tier is a pure latency optimisation, never a result change — and the
  shared arm must report one cold build (at most two under a slot race)
  with every other job attaching.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_shared_cache.py
    PYTHONPATH=src python benchmarks/perf/bench_shared_cache.py \
        --n 18 --jobs 6 --min-speedup 3   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import multiprocessing
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "src"))

from repro.graphs import gnm_random_graph, write_edge_list  # noqa: E402
from repro.perf import MarkedSetCache, SharedTableStore  # noqa: E402
from repro.service import JobSpec, ServiceConfig, Supervisor  # noqa: E402


def _table_digest(table) -> str:
    return hashlib.sha256(
        table._by_size.tobytes() + table._offsets.tobytes()
    ).hexdigest()


def _fleet_job(task):
    """One worker-process job: build (or attach) the table, report back."""
    n, m, graph_seed, k, kernel, shared_dir = task
    graph = gnm_random_graph(n, m, seed=graph_seed)
    shared = SharedTableStore(shared_dir) if shared_dir else None
    cache = MarkedSetCache(kernel=kernel, shared=shared)
    start = time.perf_counter()
    table = cache.table(graph, k)
    elapsed = time.perf_counter() - start
    return {
        "job_s": elapsed,
        "digest": _table_digest(table),
        "stats": cache.stats(),
    }


def fleet_block(args) -> tuple[dict, list[str]]:
    """Identical jobs across OS workers: all-cold vs publish-then-attach."""
    failures: list[str] = []
    m = args.edges if args.edges is not None else args.n * 6
    ctx = multiprocessing.get_context("fork")

    def run_arm(shared_dir):
        task = (args.n, m, args.graph_seed, args.k, args.kernel, shared_dir)
        wall = time.perf_counter()
        with ctx.Pool(args.workers) as pool:
            if shared_dir:
                # The fleet contract the service relies on: the first
                # job cold-builds and publishes, *then* the rest fan
                # out and attach.
                results = [pool.apply(_fleet_job, (task,))]
                results += pool.map(_fleet_job, [task] * (args.jobs - 1))
            else:
                results = pool.map(_fleet_job, [task] * args.jobs)
        return results, time.perf_counter() - wall

    baseline, baseline_wall = run_arm(None)
    shared_dir = tempfile.mkdtemp(prefix="bench-shared-cache-")
    shared, shared_wall = run_arm(shared_dir)

    digests = {r["digest"] for r in baseline} | {r["digest"] for r in shared}
    if len(digests) != 1:
        failures.append(f"table digests diverged across jobs/arms: {digests}")

    publishes = sum(r["stats"]["shared_publishes"] for r in shared)
    attaches = sum(r["stats"]["shared_hits"] for r in shared)
    if publishes != 1:
        failures.append(f"expected exactly 1 publish (warm-up job), saw {publishes}")
    if attaches != args.jobs - 1:
        failures.append(
            f"expected {args.jobs - 1} shared attaches, saw {attaches}"
        )

    baseline_total = sum(r["job_s"] for r in baseline)
    shared_total = sum(r["job_s"] for r in shared)
    speedup = baseline_total / shared_total if shared_total else float("inf")
    block = {
        "n": args.n,
        "m": m,
        "k": args.k,
        "kernel": args.kernel,
        "jobs": args.jobs,
        "workers": args.workers,
        "per_job_s": {
            "baseline": [round(r["job_s"], 5) for r in baseline],
            "shared": [round(r["job_s"], 5) for r in shared],
        },
        "totals_s": {
            "baseline_jobs": round(baseline_total, 4),
            "shared_jobs": round(shared_total, 4),
            "baseline_wall": round(baseline_wall, 4),
            "shared_wall": round(shared_wall, 4),
        },
        "shared_publishes": publishes,
        "shared_attaches": attaches,
        "amortized_job_speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "byte_identical": len(digests) == 1,
    }
    if speedup < args.min_speedup:
        failures.append(
            f"amortized job speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
    return block, failures


async def _service_arm(specs, workdir, shared_cache_dir=None):
    config = ServiceConfig(
        workers=2, workdir=str(workdir), shared_cache_dir=shared_cache_dir
    )
    wall = time.perf_counter()
    async with Supervisor(config) as sup:
        jobs = [sup.submit(spec) for spec in specs]
        results = await asyncio.gather(*(job.result_dict() for job in jobs))
    return results, time.perf_counter() - wall


def service_block(args) -> tuple[dict, list[str]]:
    """The same fan-out through the real supervisor, byte-gated."""
    failures: list[str] = []
    tmp = Path(tempfile.mkdtemp(prefix="bench-shared-service-"))
    graph_path = tmp / "graph.edges"
    write_edge_list(
        gnm_random_graph(args.service_n, args.service_n * 2, seed=args.graph_seed),
        graph_path,
    )
    specs = [
        JobSpec(str(graph_path), k=args.k, seed=7, name=f"job-{i}")
        for i in range(args.jobs)
    ]

    plain, plain_wall = asyncio.run(_service_arm(specs, tmp / "work"))
    shared, shared_wall = asyncio.run(
        _service_arm(
            specs, tmp / "work-shared", shared_cache_dir=str(tmp / "cache")
        )
    )

    identical = 0
    for spec, off, on in zip(specs, plain, shared):
        if off["answer"] == on["answer"]:
            identical += 1
        else:
            failures.append(f"{spec.name}: shared answer differs from baseline")
        for arm, result in (("baseline", off), ("shared", on)):
            if not result["verified"]:
                failures.append(f"{spec.name}: {arm} ledger did not reconcile")

    stats = [res["cache"] for res in shared]
    publishes = sum(s["shared_publishes"] for s in stats)
    attaches = sum(s["shared_hits"] for s in stats)
    # Two worker slots start together, so up to two jobs may cold-build
    # concurrently; a double publish installs identical bytes.
    if not 1 <= publishes <= 2:
        failures.append(f"expected 1-2 service publishes, saw {publishes}")
    if attaches < args.jobs - 2:
        failures.append(
            f"expected >= {args.jobs - 2} service attaches, saw {attaches}"
        )
    block = {
        "n": args.service_n,
        "k": args.k,
        "jobs": args.jobs,
        "workers": 2,
        "identical_answers": identical,
        "ledgers_verified": identical == args.jobs and not failures,
        "shared_publishes": publishes,
        "shared_attaches": attaches,
        "timings_s": {
            "baseline_wall": round(plain_wall, 4),
            "shared_wall": round(shared_wall, 4),
        },
    }
    return block, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=22, help="fleet-block vertices")
    parser.add_argument("--edges", type=int, default=None, help="edges (default n*6)")
    parser.add_argument("-k", type=int, default=2, help="plex parameter")
    parser.add_argument("--jobs", type=int, default=8, help="identical jobs per arm")
    parser.add_argument("--workers", type=int, default=2, help="OS worker processes")
    parser.add_argument("--graph-seed", type=int, default=3)
    parser.add_argument(
        "--kernel", default="numpy",
        help="sweep kernel for the fleet block (numpy = deterministic cost)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required amortized per-job speedup (default 5.0)",
    )
    parser.add_argument(
        "--service-n", type=int, default=9,
        help="instance size for the end-to-end supervisor block",
    )
    parser.add_argument("--out", type=Path, default=None, help="output JSON path")
    args = parser.parse_args(argv)

    fleet, fleet_failures = fleet_block(args)
    service, service_failures = service_block(args)

    report = {
        "bench": "qmkp_shared_cache",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "fleet": fleet,
        "service": service,
    }
    out = args.out or (Path(__file__).parent / "BENCH_qmkp_shared_cache.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({
        "amortized_job_speedup": fleet["amortized_job_speedup"],
        "byte_identical": fleet["byte_identical"],
        "identical_answers": f"{service['identical_answers']}/{service['jobs']}",
        "ledgers_verified": service["ledgers_verified"],
    }, indent=2))
    print(f"-> {out}")
    failures = fleet_failures + service_failures
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
