"""Perf harness for the sparse incremental annealing engine.

Times the SA sampler end-to-end on a paper-style qaMKP QUBO two ways:

* ``engine`` — the current :class:`repro.annealing.SimulatedAnnealingSampler`
  (CSR sweep plan, chunked field builds, intra-chunk incremental
  updates, bytes-level dedup);
* ``seed`` — a faithful transcription of the seed sampler embedded
  below (dense ``to_numpy`` matrices, per-variable field matvecs,
  per-term energy loop, dict-per-read ``from_states`` construction),
  kept here so the before/after comparison survives the seed code's
  removal from the tree.

The harness **gates on correctness, not just speed**:

* the seed and engine samplesets must be identical fingerprint-for-
  fingerprint (assignments, energies, multiplicities, order) — the
  bit-identical contract the engine promises under fixed seeds;
* ``batched_tabu`` must reach an equal-or-better best energy than the
  seed single-trajectory tabu loop from the **same initial states at
  the same flip budget** (restarts x iterations);
* with ``--trace``, the traced run must reconcile in the run ledger
  (zero drift, ``num_flips`` matching the spans' claims) and stay
  within the tracing-overhead limit;
* the measured SA speedup must clear ``--min-speedup``;
* every available kernel backend (numpy / numba / cext; see
  :mod:`repro.perf.kernels`) must produce a fingerprint-identical
  sampleset, and the fastest compiled tier must clear
  ``--min-kernel-speedup`` over the NumPy reference end-to-end
  (skipped when only numpy is available).

The kernel block times the *representative qaMKP regime* — the paper's
runtime-budgeted SA uses ~10 reads x 2 sweeps per shot, where the
per-sweep dispatch overhead the compiled tier eliminates dominates.

Emits ``BENCH_qamkp_sa_n<n>_k<k>.json`` (override with ``--out``).  Run
from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_anneal_engine.py --n 40 --reads 1024
    PYTHONPATH=src python benchmarks/perf/bench_anneal_engine.py \
        --n 100 --reads 16 --sweeps 2 --repeat 5
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.annealing import SimulatedAnnealingSampler, batched_tabu
from repro.annealing.sampleset import SampleSet
from repro.core.qubo_formulation import build_mkp_qubo
from repro.graphs import gnm_random_graph

# ----------------------------------------------------------------------
# Seed transcriptions (the pre-engine sampler, verbatim semantics)
# ----------------------------------------------------------------------


def _seed_schedule(h, jsym, num_sweeps):
    max_delta = max(float(np.max(np.abs(h) + np.sum(np.abs(jsym), axis=0))), 1e-9)
    coeffs = np.concatenate([np.abs(h[h != 0]), np.abs(jsym[jsym != 0])])
    min_coeff = float(coeffs.min()) if coeffs.size else 1.0
    hot = np.log(2.0) / max_delta
    cold = np.log(100.0) / max(min_coeff, 1e-9)
    if num_sweeps == 1:
        return np.array([cold])
    return np.geomspace(max(hot, 1e-12), max(cold, hot * 1.0001), num_sweeps)


def _seed_energies(bqm, states, order):
    """The seed ``BinaryQuadraticModel.energies``: a per-term Python loop."""
    index = {v: i for i, v in enumerate(order)}
    states = np.asarray(states, dtype=float)
    h = np.zeros(len(order))
    for v, bias in bqm.linear.items():
        h[index[v]] = bias
    energies = states @ h + bqm.offset
    for (u, v), bias in bqm.quadratic.items():
        energies += bias * states[:, index[u]] * states[:, index[v]]
    return energies


def seed_sa_sample(bqm, num_reads, num_sweeps, seed):
    """The seed ``SimulatedAnnealingSampler.sample``, end to end."""
    rng = np.random.default_rng(seed)
    bqm.require_finite()
    h, j, _offset, order = bqm.to_numpy()
    n = len(order)
    jsym = j + j.T
    states = rng.integers(0, 2, size=(num_reads, n)).astype(float)
    betas = _seed_schedule(h, jsym, num_sweeps)
    for beta in betas:
        for i in range(n):
            field = h[i] + states @ jsym[:, i]
            delta = (1.0 - 2.0 * states[:, i]) * field
            accept = (delta <= 0) | (
                rng.random(num_reads) < np.exp(-beta * np.clip(delta, 0, 700))
            )
            states[accept, i] = 1.0 - states[accept, i]
    energies = _seed_energies(bqm, states, order)
    assignments = [
        {v: int(states[r, c]) for c, v in enumerate(order)}
        for r in range(num_reads)
    ]
    result = SampleSet.from_states(assignments, energies.tolist())
    result.info.update({"num_reads": num_reads, "sweeps_per_read": num_sweeps})
    return result


def seed_tabu_best(bqm, initial, iterations, tenure):
    """Best energy of the seed single-trajectory tabu loop."""
    h, j, _offset, order = bqm.to_numpy()
    n = len(order)
    if tenure is None:
        tenure = min(20, n // 4 + 1)
    jsym = j + j.T
    x = np.array([initial[v] for v in order], dtype=float)
    field = h + jsym @ x
    delta = (1.0 - 2.0 * x) * field
    energy = float(bqm.energies(x[None, :], order)[0])
    best_energy = energy
    tabu_until = np.zeros(n, dtype=np.int64)
    for step in range(1, iterations + 1):
        allowed = (tabu_until < step) | (energy + delta < best_energy - 1e-12)
        if not np.any(allowed):
            allowed[:] = True
        scores = np.where(allowed, delta, np.inf)
        i = int(np.argmin(scores))
        sign = 1.0 - 2.0 * x[i]
        x[i] += sign
        energy += delta[i]
        delta[i] = -delta[i]
        shift = (1.0 - 2.0 * x) * jsym[i] * sign
        shift[i] = 0.0
        delta += shift
        tabu_until[i] = step + tenure
        if energy < best_energy - 1e-12:
            best_energy = energy
    return best_energy


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def fingerprint(sampleset) -> list:
    return [
        (tuple(sorted(s.assignment.items())), s.energy, s.num_occurrences)
        for s in sampleset.samples
    ]


def _best_of(repeat, fn):
    """Best-of-``repeat`` wall clock; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=40, help="graph vertices (default 40)")
    parser.add_argument("--edges", type=int, default=None,
                        help="graph edges (default ~75%% density)")
    parser.add_argument("-k", type=int, default=2, help="plex parameter")
    parser.add_argument("--penalty", type=float, default=2.0, help="QUBO penalty weight")
    parser.add_argument("--graph-seed", type=int, default=7)
    parser.add_argument("--sample-seed", type=int, default=11)
    parser.add_argument("--reads", type=int, default=1024, help="SA num_reads")
    parser.add_argument("--sweeps", type=int, default=2,
                        help="SA num_sweeps (the paper's fixed small sweep count)")
    parser.add_argument("--repeat", type=int, default=3, help="timing repeats (min taken)")
    parser.add_argument("--workers", type=int, default=None,
                        help="engine shard width (also applied to the traced run)")
    parser.add_argument("--tabu-restarts", type=int, default=8)
    parser.add_argument("--tabu-iterations", type=int, default=200)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required seed/engine SA wall-clock ratio (default 5.0)")
    parser.add_argument(
        "--min-kernel-speedup", type=float, default=3.0,
        help="required compiled-vs-numpy end-to-end SA speedup when a "
        "compiled kernel backend is available (default 3.0)",
    )
    parser.add_argument(
        "--baseline-s", type=float, default=None,
        help="seed-commit wall-clock (measured there with --legacy), recorded as-is",
    )
    parser.add_argument(
        "--legacy", action="store_true",
        help="time the embedded seed transcription only and print it",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="also time a traced engine run, write its run-ledger JSON to PATH, "
        "and fail on ledger drift or excessive tracing overhead",
    )
    parser.add_argument(
        "--trace-overhead-limit", type=float, default=0.10,
        help="max allowed (traced - untraced) / untraced (default 0.10)",
    )
    parser.add_argument("--out", type=Path, default=None, help="output JSON path")
    args = parser.parse_args(argv)

    edges = (
        args.edges
        if args.edges is not None
        else int(0.75 * args.n * (args.n - 1) / 2)
    )
    graph = gnm_random_graph(args.n, edges, seed=args.graph_seed)
    bqm = build_mkp_qubo(graph, args.k, args.penalty).bqm

    if args.legacy:
        seed_s, ss = _best_of(
            args.repeat,
            lambda: seed_sa_sample(bqm, args.reads, args.sweeps, args.sample_seed),
        )
        print(f"legacy SA n={args.n} vars={bqm.num_variables} reads={args.reads} "
              f"sweeps={args.sweeps}: {seed_s:.3f}s best={ss.lowest_energy}")
        return 0

    sampler = SimulatedAnnealingSampler()

    def run_engine(tracer=None):
        return sampler.sample(
            bqm, num_reads=args.reads, num_sweeps=args.sweeps,
            seed=args.sample_seed, workers=args.workers, tracer=tracer,
        )

    # Warm the CSR / sweep-plan caches outside the timed region, same as
    # long-running experiments would amortise them.
    engine_ss = run_engine()
    engine_s, engine_ss = _best_of(args.repeat, run_engine)
    seed_s, seed_ss = _best_of(
        args.repeat,
        lambda: seed_sa_sample(bqm, args.reads, args.sweeps, args.sample_seed),
    )

    identical = fingerprint(seed_ss) == fingerprint(engine_ss)
    speedup = seed_s / engine_s

    # Tabu: same initial states, same flip budget, equal-or-better best.
    init_rng = np.random.default_rng(args.sample_seed)
    variables = sorted(bqm.variables, key=str)
    inits = [
        {v: int(init_rng.integers(0, 2)) for v in variables}
        for _ in range(args.tabu_restarts)
    ]
    batched_s, batched = _best_of(
        1,
        lambda: batched_tabu(
            bqm, num_restarts=args.tabu_restarts, initial_states=inits,
            iterations=args.tabu_iterations,
        ),
    )
    seed_tabu_s, seed_best = _best_of(
        1,
        lambda: min(
            seed_tabu_best(bqm, init, args.tabu_iterations, None) for init in inits
        ),
    )
    tabu_ok = bool(batched.best_energy <= seed_best + 1e-9)

    failures: list[str] = []

    # ------------------------------------------------------------------
    # Kernel tier comparison: every available backend, fingerprint-gated.
    # ------------------------------------------------------------------
    from repro.perf.kernels import available_backends

    backends = available_backends()
    kernel_block: dict = {
        "available": backends,
        "min_speedup": args.min_kernel_speedup,
        "tiers": {},
    }
    kernel_ref = None
    for name in backends:

        def run_kernel(name=name):
            return sampler.sample(
                bqm, num_reads=args.reads, num_sweeps=args.sweeps,
                seed=args.sample_seed, kernel=name,
            )

        run_kernel()  # warm the backend (compile/self-check outside timing)
        tier_s, tier_ss = _best_of(args.repeat, run_kernel)
        kernel_block["tiers"][name] = {
            "seconds": round(tier_s, 4),
            "best_energy": tier_ss.lowest_energy,
        }
        tier_fp = fingerprint(tier_ss)
        if name == "numpy":
            kernel_ref = tier_fp
        elif tier_fp != kernel_ref:
            failures.append(f"kernel {name!r} sampleset diverged from numpy")
    for name, tier in kernel_block["tiers"].items():
        tier["speedup_vs_numpy"] = round(
            kernel_block["tiers"]["numpy"]["seconds"] / tier["seconds"], 2
        )
    compiled = [name for name in backends if name != "numpy"]
    if compiled:
        best_name = max(
            compiled,
            key=lambda name: kernel_block["tiers"][name]["speedup_vs_numpy"],
        )
        kernel_block["best_compiled"] = best_name
        best_speedup = kernel_block["tiers"][best_name]["speedup_vs_numpy"]
        if best_speedup < args.min_kernel_speedup:
            failures.append(
                f"compiled SA speedup {best_speedup:.2f}x below required "
                f"{args.min_kernel_speedup:.2f}x"
            )
    if not identical:
        failures.append("engine sampleset diverged from the seed transcription")
    if speedup < args.min_speedup:
        failures.append(
            f"SA speedup {speedup:.2f}x below required {args.min_speedup:.2f}x"
        )
    if not tabu_ok:
        failures.append(
            f"batched tabu best {batched.best_energy} worse than seed {seed_best}"
        )

    trace_block = None
    if args.trace is not None:
        from repro.obs import RunLedger, Tracer

        tracer_box: list = []

        def run_traced():
            tracer = Tracer()
            tracer_box.append(tracer)
            return run_engine(tracer=tracer)

        traced_s, traced_ss = _best_of(args.repeat, run_traced)
        tracer = tracer_box[-1]
        if fingerprint(traced_ss) != fingerprint(engine_ss):
            failures.append("traced run diverged from untraced run")
        ledger = RunLedger.from_tracer(
            tracer,
            meta={
                "bench": "qamkp_sa_engine",
                "n": args.n, "m": edges, "k": args.k,
                "graph_seed": args.graph_seed, "sample_seed": args.sample_seed,
                "reads": args.reads, "sweeps": args.sweeps,
            },
        )
        drift = ledger.verify(raise_on_drift=False)
        for record in drift:
            failures.append(f"ledger drift: {record}")
        if ledger.total("anneal_flips") != traced_ss.info["num_flips"]:
            failures.append("ledger anneal_flips does not reconcile with info")
        if ledger.total("anneal_sweeps") != traced_ss.info["sweeps_per_read"]:
            failures.append("ledger anneal_sweeps does not reconcile with info")
        ledger.to_json(args.trace)
        overhead = traced_s / engine_s - 1.0
        if overhead > args.trace_overhead_limit:
            failures.append(
                f"tracing overhead {overhead:.1%} exceeds "
                f"{args.trace_overhead_limit:.0%}"
            )
        trace_block = {
            "ledger": str(args.trace),
            "traced_s": round(traced_s, 4),
            "overhead_fraction": round(overhead, 4),
            "overhead_limit": args.trace_overhead_limit,
            "drift_records": len(drift),
            "verified": not drift,
        }

    report = {
        "bench": "qamkp_sa_engine",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "instance": {
            "generator": "gnm_random_graph",
            "n": args.n,
            "m": edges,
            "k": args.k,
            "penalty": args.penalty,
            "num_variables": bqm.num_variables,
            "num_interactions": bqm.num_interactions,
            "graph_seed": args.graph_seed,
            "sample_seed": args.sample_seed,
            "reads": args.reads,
            "sweeps": args.sweeps,
        },
        "sa": {
            "engine_s": round(engine_s, 4),
            "seed_s": round(seed_s, 4),
            "seed_baseline_s": args.baseline_s,
            "speedup": round(speedup, 2),
            "min_speedup": args.min_speedup,
            "speedup_vs_baseline": (
                round(args.baseline_s / engine_s, 2) if args.baseline_s else None
            ),
            "identical_samplesets": identical,
            "best_energy": engine_ss.lowest_energy,
            "num_flips": engine_ss.info["num_flips"],
        },
        "tabu": {
            "restarts": args.tabu_restarts,
            "iterations": args.tabu_iterations,
            "flip_budget": args.tabu_restarts * args.tabu_iterations,
            "batched_s": round(batched_s, 4),
            "seed_s": round(seed_tabu_s, 4),
            "batched_best": float(batched.best_energy),
            "seed_best": float(seed_best),
            "equal_or_better": tabu_ok,
        },
        "kernels": kernel_block,
        "trace": trace_block,
    }

    out = args.out or Path(__file__).parent / f"BENCH_qamkp_sa_n{args.n}_k{args.k}.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({"sa": report["sa"], "tabu": report["tabu"]}, indent=2))
    print(f"identical={identical} speedup={speedup:.2f}x tabu_ok={tabu_ok} -> {out}")
    if trace_block is not None:
        print(
            f"trace: verified={trace_block['verified']} "
            f"overhead={trace_block['overhead_fraction']:.1%} "
            f"-> {trace_block['ledger']}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
