"""Perf harness for dynamic-graph incremental re-solves.

Two blocks, both gated, emitted as ``BENCH_qmkp_dynamic_n<n>_k<k>.json``:

* ``maintenance`` — amortized per-update cost of re-deriving the
  marked-set state after a single-edge edit, cold (a fresh bit-parallel
  sweep of all ``2^n`` masks per edit) versus incremental
  (:meth:`repro.perf.MarkedSetCache.patch`, which re-evaluates only the
  ``2^(n-2)`` masks containing both endpoints — or just the previously
  marked ones for a deletion).  Patched and fresh tables must be
  byte-identical, and the amortized speedup must clear
  ``--min-speedup`` (default 3x) at the pinned size.

  This is the honest comparison: under the exact profile both arms run
  *the same* probe sequence (the solves are byte-identical, so
  ``gate_units``/``oracle_calls`` match bit for bit), which means the
  classical maintenance sweep is the only cost the edit stream can
  change — and the one that scales as ``2^n`` with the instance.

* ``session`` — an end-to-end :class:`repro.dynamic.IncrementalSolver`
  run over the same kind of edit stream on a smaller companion instance
  (``--solve-n``) where the full statevector simulation is cheap,
  gated on every step being byte-identical to a cold
  :func:`repro.core.qmkp` of the post-edit graph with the step's own
  seed, and on the session ledger reconciling.  Wall-clock for both
  arms is recorded for context, not gated: in simulation the Grover
  probes dominate and are identical in both arms by construction.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_dynamic.py --n 20 --edits 12
    PYTHONPATH=src python benchmarks/perf/bench_dynamic.py \
        --n 18 --edits 8 --solve-n 12 --min-speedup 1.5   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import qmkp
from repro.dynamic import DynamicGraph, IncrementalSolver
from repro.graphs import gnm_random_graph
from repro.obs import Tracer
from repro.perf import MarkedSetCache, kplex_masks


def _edit_stream(graph, count: int, seed: int):
    """``count`` deterministic single-edge toggles for ``graph``."""
    rng = np.random.default_rng(seed)
    present = {tuple(sorted(e)) for e in graph.edges}
    n = graph.num_vertices
    stream = []
    for _ in range(count):
        u, v = 0, 0
        while u == v:
            u, v = map(int, rng.integers(0, n, 2))
        u, v = min(u, v), max(u, v)
        if (u, v) in present:
            present.discard((u, v))
            stream.append(("remove_edge", u, v))
        else:
            present.add((u, v))
            stream.append(("add_edge", u, v))
    return stream


def _tables_identical(a, b) -> bool:
    return (
        a.num_vertices == b.num_vertices
        and np.array_equal(a._by_size, b._by_size)
        and a._by_size.dtype == b._by_size.dtype
        and np.array_equal(a._offsets, b._offsets)
    )


def maintenance_block(args) -> tuple[dict, list[str]]:
    """Cold sweep vs cache patch per single-edge edit, byte-gated."""
    failures: list[str] = []
    m = args.edges if args.edges is not None else args.n * 6
    graph = gnm_random_graph(args.n, m, seed=args.graph_seed)
    stream = _edit_stream(graph, args.edits, args.graph_seed + 1)

    dg = DynamicGraph(graph)
    cache = MarkedSetCache(kernel=args.kernel)
    start = time.perf_counter()
    cache.table(dg.snapshot(), args.k)
    initial_sweep_s = time.perf_counter() - start

    per_edit = []
    for op, u, v in stream:
        old = dg.snapshot()
        getattr(dg, op)(u, v)
        new = dg.snapshot()

        start = time.perf_counter()
        patched = cache.patch(old, new, args.k, op, u, v)
        patch_s = time.perf_counter() - start

        best_cold = float("inf")
        fresh = None
        for _ in range(args.repeat):
            start = time.perf_counter()
            fresh = MarkedSetCache(kernel=args.kernel).table(new, args.k)
            best_cold = min(best_cold, time.perf_counter() - start)

        if patched is None or not _tables_identical(patched, fresh):
            failures.append(f"patched table diverges from fresh sweep after {op} {u} {v}")
        per_edit.append({
            "edit": f"{op} {u} {v}",
            "patch_s": round(patch_s, 5),
            "cold_sweep_s": round(best_cold, 5),
            "num_marked": int(fresh.num_marked),
        })

    stats = cache.stats()
    patch_total = sum(e["patch_s"] for e in per_edit)
    cold_total = sum(e["cold_sweep_s"] for e in per_edit)
    speedup = cold_total / patch_total if patch_total else float("inf")
    amortized = (cold_total / args.edits) / (
        (initial_sweep_s + patch_total) / (args.edits + 1)
    )
    block = {
        "n": args.n,
        "m": m,
        "k": args.k,
        "kernel": args.kernel or "default",
        "edits": args.edits,
        "initial_sweep_s": round(initial_sweep_s, 5),
        "per_edit": per_edit,
        "totals_s": {
            "incremental_patches": round(patch_total, 5),
            "cold_sweeps": round(cold_total, 5),
        },
        "amortized_update_speedup": round(speedup, 2),
        "amortized_incl_initial_sweep": round(amortized, 2),
        "reused_partitions": stats["reused_partitions"],
        "cache_patches": stats["patches"],
        "cache_misses": stats["misses"],
        "min_speedup": args.min_speedup,
    }
    if stats["misses"] != 1:
        failures.append(f"incremental arm swept {stats['misses']} times, expected 1")
    if speedup < args.min_speedup:
        failures.append(
            f"amortized update speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x"
        )
    return block, failures


def session_block(args) -> tuple[dict, list[str]]:
    """End-to-end incremental session vs per-step cold solves."""
    failures: list[str] = []
    n = args.solve_n
    m = min(n * 6, n * (n - 1) // 2 - n)  # leave headroom for insertions
    graph = gnm_random_graph(n, m, seed=args.graph_seed)
    stream = _edit_stream(graph, args.solve_edits, args.graph_seed + 2)

    tracer = Tracer()
    session = IncrementalSolver(
        graph, args.k, seed=args.rng_seed, kernel=args.kernel, tracer=tracer
    )
    start = time.perf_counter()
    session.resolve()
    for op, u, v in stream:
        getattr(session, op)(u, v)
        session.resolve()
    incremental_s = time.perf_counter() - start

    dg = DynamicGraph(graph)
    cold_s = 0.0
    identical = 0
    for step_result in session.history:
        for edit in step_result.edits:
            dg.apply(edit)
        start = time.perf_counter()
        cold = qmkp(
            dg.snapshot(), args.k,
            rng=session.step_rng(step_result.step),
            cache=MarkedSetCache(kernel=args.kernel),
        )
        cold_s += time.perf_counter() - start
        if (
            cold.subset == step_result.subset
            and cold.oracle_calls == step_result.result.oracle_calls
            and cold.gate_units == step_result.result.gate_units
            and cold.progression == step_result.result.progression
        ):
            identical += 1
        else:
            failures.append(
                f"step {step_result.step} diverged from its cold solve"
            )

    drift = session.ledger().verify(raise_on_drift=False)
    for record in drift:
        failures.append(f"ledger drift: {record}")
    block = {
        "n": n,
        "m": m,
        "k": args.k,
        "edits": args.solve_edits,
        "steps": len(session.history),
        "identical_steps": identical,
        "reused_partitions": sum(s.reused_partitions for s in session.history),
        "timings_s": {
            "incremental_session": round(incremental_s, 4),
            "cold_resolves": round(cold_s, 4),
        },
        "simulator_wall_speedup": round(cold_s / incremental_s, 2),
        "ledger_verified": not drift,
    }
    return block, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20, help="maintenance-block vertices")
    parser.add_argument("--edges", type=int, default=None, help="edges (default n*6)")
    parser.add_argument("-k", type=int, default=2, help="plex parameter")
    parser.add_argument("--edits", type=int, default=12, help="single-edge updates")
    parser.add_argument("--graph-seed", type=int, default=3)
    parser.add_argument("--rng-seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=3, help="cold-sweep timing repeats")
    parser.add_argument(
        "--kernel", default=None,
        help="sweep kernel backend (default: best available tier)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required amortized single-edge update speedup (default 3.0)",
    )
    parser.add_argument(
        "--solve-n", type=int, default=14,
        help="companion instance for the end-to-end byte-identity block",
    )
    parser.add_argument(
        "--solve-edits", type=int, default=6,
        help="edit-stream length for the end-to-end block",
    )
    parser.add_argument("--out", type=Path, default=None, help="output JSON path")
    args = parser.parse_args(argv)

    maint, maint_failures = maintenance_block(args)
    sess, sess_failures = session_block(args)

    report = {
        "bench": "qmkp_dynamic",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "maintenance": maint,
        "session": sess,
    }
    out = args.out or (
        Path(__file__).parent / f"BENCH_qmkp_dynamic_n{args.n}_k{args.k}.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({
        "amortized_update_speedup": maint["amortized_update_speedup"],
        "amortized_incl_initial_sweep": maint["amortized_incl_initial_sweep"],
        "identical_steps": f"{sess['identical_steps']}/{sess['steps']}",
        "ledger_verified": sess["ledger_verified"],
    }, indent=2))
    print(f"-> {out}")
    failures = maint_failures + sess_failures
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
