"""Perf harness for the bit-parallel marked-set engine.

Measures end-to-end qMKP wall-clock on a generator instance three ways:

* ``cached`` — the default path: one bit-parallel sweep per ``(graph,
  k)`` shared across all binary-search thresholds
  (:class:`repro.perf.MarkedSetCache`);
* ``uncached`` — the same tree with the cache disabled, i.e. a full
  predicate scan per threshold probe (the seed *structure*, with
  whatever predicate speedups the tree has since gained);
* optionally a ``--baseline-s`` figure measured on the seed commit
  itself (run this script there via ``--legacy``), recorded verbatim so
  the emitted JSON carries true before/after numbers.

It also runs a predicate-agreement sweep — the bit-parallel enumerator
against ``KCplexOracle.predicate`` over every ``(k, T)`` on randomized
small graphs — and **exits non-zero on any mismatch or any divergence
between cached and uncached qMKP results**, which is what the CI smoke
job gates on.

Two extension blocks (PR 7) ride on the same harness:

* ``kernels`` — per-backend timing of the bit-parallel enumeration
  sweep (:func:`repro.perf.bitparallel.kplex_masks`) through every
  available kernel tier (numpy / numba / cext), gated on byte-identical
  mask arrays and, when a compiled tier exists, on a minimum speedup
  over the NumPy reference.  ``--enum-only`` restricts the run to this
  block so the committed ``n >= 24`` baseline stays tractable (a full
  qmkp at n = 24 would need a 2^24-amplitude simulation);
* ``ladder`` — binary vs adaptive threshold ladder on a qmkp-feasible
  companion instance (``--ladder-n``), gated on identical optima and
  never-more probes.

Emits ``BENCH_qmkp_n<n>_k<k>.json`` (override with ``--out``).  Run
from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_marked_engine.py --n 18 --edges 120
    PYTHONPATH=src python benchmarks/perf/bench_marked_engine.py \
        --n 24 --enum-only --ladder-n 12 --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import qmkp
from repro.core.oracle import KCplexOracle
from repro.graphs import gnm_random_graph


def _result_fingerprint(result) -> dict:
    return {
        "subset": sorted(result.subset),
        "size": result.size,
        "oracle_calls": result.oracle_calls,
        "gate_units": result.gate_units,
        "qtkp_calls": result.qtkp_calls,
        "progression": [
            [e.cumulative_oracle_calls, e.cumulative_gate_units, e.size, e.threshold]
            for e in result.progression
        ],
    }


def _time_qmkp(
    graph, k, rng_seed, repeat, tracer_factory=None, **kwargs
) -> tuple[float, dict, object]:
    """Best-of-``repeat`` wall clock; returns (seconds, fingerprint, tracer).

    ``tracer_factory`` builds a fresh tracer per repeat (so timings are
    not polluted by a growing span tree); the returned tracer is the
    last repeat's, for the ledger.
    """
    best = float("inf")
    fingerprint = None
    tracer = None
    for _ in range(repeat):
        tracer = tracer_factory() if tracer_factory is not None else None
        rng = np.random.default_rng(rng_seed)
        start = time.perf_counter()
        result = qmkp(graph, k, rng=rng, tracer=tracer, **kwargs)
        best = min(best, time.perf_counter() - start)
        fp = _result_fingerprint(result)
        if fingerprint is None:
            fingerprint = fp
        elif fingerprint != fp:
            raise AssertionError("qmkp is not deterministic under a fixed seed")
    return best, fingerprint, tracer


def kernel_comparison(graph, k, repeat: int, min_speedup: float) -> tuple[dict, list[str]]:
    """Per-backend timing of the bit-parallel enumeration sweep.

    Every available tier runs the same ``kplex_masks`` sweep; outputs
    are compared byte-for-byte against the NumPy reference, and the
    fastest *compiled* tier must clear ``min_speedup`` (skipped when
    only numpy is available — the tier is an accelerator, not a
    dependency).
    """
    import hashlib

    from repro.perf.bitparallel import kplex_masks
    from repro.perf.kernels import available_backends

    failures: list[str] = []
    backends = available_backends()
    block: dict = {"available": backends, "min_speedup": min_speedup, "tiers": {}}
    reference = None
    for name in backends:
        best = float("inf")
        digest = None
        for _ in range(repeat):
            start = time.perf_counter()
            masks, sizes = kplex_masks(graph, k, kernel=name)
            best = min(best, time.perf_counter() - start)
            digest = hashlib.sha256(masks.tobytes() + sizes.tobytes()).hexdigest()
        block["tiers"][name] = {
            "seconds": round(best, 4),
            "masks_sha256": digest,
            "num_marked": int(masks.size),
        }
        if name == "numpy":
            reference = digest
    for name, tier in block["tiers"].items():
        tier["speedup_vs_numpy"] = round(
            block["tiers"]["numpy"]["seconds"] / tier["seconds"], 2
        )
        if tier["masks_sha256"] != reference:
            failures.append(f"kernel {name!r} produced different mask bytes")
    compiled = [n for n in backends if n != "numpy"]
    if compiled:
        best_name = max(
            compiled, key=lambda n: block["tiers"][n]["speedup_vs_numpy"]
        )
        block["best_compiled"] = best_name
        best_speedup = block["tiers"][best_name]["speedup_vs_numpy"]
        if best_speedup < min_speedup:
            failures.append(
                f"compiled enumeration speedup {best_speedup:.2f}x below "
                f"required {min_speedup:.2f}x"
            )
    return block, failures


def ladder_comparison(n: int, k: int, graph_seed: int, rng_seed: int) -> tuple[dict, list[str]]:
    """Binary vs adaptive threshold ladder on a qmkp-feasible instance.

    Gates on identical optimum sizes (both modes) and, under exact
    counting, the adaptive ladder never using more qTKP probes; records
    the probe / oracle-call / gate-unit savings per counting mode.
    """
    failures: list[str] = []
    m = min(n * 5, n * (n - 1) // 2)
    graph = gnm_random_graph(n, m, seed=graph_seed)
    block: dict = {"n": n, "m": m, "k": k, "graph_seed": graph_seed, "modes": {}}
    for counting in ("exact", "bbht"):
        binary = qmkp(graph, k, counting=counting, rng=np.random.default_rng(rng_seed))
        adaptive = qmkp(
            graph, k, counting=counting, rng=np.random.default_rng(rng_seed),
            ladder="adaptive",
        )
        mode = {
            "optimum": binary.size,
            "binary": {
                "qtkp_calls": binary.qtkp_calls,
                "oracle_calls": binary.oracle_calls,
                "gate_units": binary.gate_units,
            },
            "adaptive": {
                "qtkp_calls": adaptive.qtkp_calls,
                "oracle_calls": adaptive.oracle_calls,
                "gate_units": adaptive.gate_units,
                "skipped_thresholds": adaptive.skipped_thresholds,
            },
            "probe_savings": binary.qtkp_calls - adaptive.qtkp_calls,
            "oracle_savings": binary.oracle_calls - adaptive.oracle_calls,
        }
        block["modes"][counting] = mode
        if adaptive.size != binary.size:
            failures.append(
                f"ladder[{counting}]: adaptive optimum {adaptive.size} != "
                f"binary {binary.size}"
            )
        # Probe-count monotonicity is only guaranteed under deterministic
        # exact counting: BBHT's ceiling carryover redraws the random
        # iteration schedule, so an individual probe that succeeded under
        # the binary ladder can fail under the adaptive one (the savings
        # hold in aggregate, gated by tests/core/test_adaptive_ladder.py).
        if counting == "exact" and adaptive.qtkp_calls > binary.qtkp_calls:
            failures.append(
                f"ladder[{counting}]: adaptive used more probes "
                f"({adaptive.qtkp_calls} > {binary.qtkp_calls})"
            )
    return block, failures


def predicate_agreement_sweep(instances: int, max_n: int = 7) -> dict:
    """Bit-parallel enumerator vs the oracle predicate, all (k, T)."""
    from repro.perf import MarkedSetCache

    checked = 0
    mismatches = 0
    for seed in range(instances):
        n = 4 + seed % (max_n - 3)
        m = min(n * (n - 1) // 2, n + 2 * seed % (2 * n))
        graph = gnm_random_graph(n, m, seed=seed)
        cache = MarkedSetCache()
        for k in range(1, 4):
            oracle = KCplexOracle(graph.complement(), k, 0)
            expected = [mask for mask in range(1 << n) if oracle.predicate(mask)]
            for threshold in range(n + 1):
                want = [m_ for m_ in expected if m_.bit_count() >= threshold]
                got = sorted(int(x) for x in cache.marked(graph, k, threshold))
                checked += 1
                if got != want:
                    mismatches += 1
    return {"instances": instances, "threshold_checks": checked, "mismatches": mismatches}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=18, help="vertices (default 18)")
    parser.add_argument("--edges", type=int, default=None, help="edges (default ~n*6)")
    parser.add_argument("-k", type=int, default=2, help="plex parameter")
    parser.add_argument("--graph-seed", type=int, default=3)
    parser.add_argument("--rng-seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=1, help="timing repeats (min taken)")
    parser.add_argument("--workers", type=int, default=None, help="sweep process-pool width")
    parser.add_argument(
        "--sweep-instances", type=int, default=6,
        help="random instances for the predicate-agreement sweep",
    )
    parser.add_argument(
        "--baseline-s", type=float, default=None,
        help="seed-commit wall-clock (measured there with --legacy), recorded as-is",
    )
    parser.add_argument(
        "--legacy", action="store_true",
        help="time plain qmkp(graph, k, rng) only and print it (for the seed tree)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="also time a traced run, write its run-ledger JSON to PATH, "
        "and fail on ledger drift or excessive tracing overhead",
    )
    parser.add_argument(
        "--trace-overhead-limit", type=float, default=0.10,
        help="max allowed (traced - untraced) / untraced (default 0.10)",
    )
    parser.add_argument(
        "--enum-only", action="store_true",
        help="skip the full-qmkp timings (for n >= ~20, where the "
        "amplitude simulation is intractable) and benchmark the "
        "enumeration kernel tiers + ladder companion instance only",
    )
    parser.add_argument(
        "--min-kernel-speedup", type=float, default=3.0,
        help="required compiled-vs-numpy enumeration speedup when a "
        "compiled backend is available (default 3.0)",
    )
    parser.add_argument(
        "--ladder-n", type=int, default=None, metavar="N",
        help="also compare binary vs adaptive threshold ladders on a "
        "qmkp-feasible companion instance of N vertices",
    )
    parser.add_argument("--out", type=Path, default=None, help="output JSON path")
    args = parser.parse_args(argv)

    edges = args.edges if args.edges is not None else args.n * 6
    graph = gnm_random_graph(args.n, edges, seed=args.graph_seed)

    if args.legacy:
        elapsed, fingerprint, _ = _time_qmkp(graph, args.k, args.rng_seed, args.repeat)
        print(f"legacy qmkp n={args.n} m={edges} k={args.k}: {elapsed:.3f}s "
              f"size={fingerprint['size']}")
        return 0

    kernel_block, kernel_failures = kernel_comparison(
        graph, args.k, args.repeat, args.min_kernel_speedup
    )

    ladder_block = None
    ladder_failures: list[str] = []
    if args.ladder_n is not None:
        ladder_block, ladder_failures = ladder_comparison(
            args.ladder_n, args.k, args.graph_seed, args.rng_seed
        )

    if args.enum_only:
        report = {
            "bench": "qmkp_marked_engine",
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "host": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "instance": {
                "generator": "gnm_random_graph",
                "n": args.n,
                "m": edges,
                "k": args.k,
                "graph_seed": args.graph_seed,
                "rng_seed": args.rng_seed,
            },
            "enum_only": True,
            "kernels": kernel_block,
            "ladder": ladder_block,
        }
        out = args.out or Path(__file__).parent / f"BENCH_qmkp_n{args.n}_k{args.k}.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(kernel_block, indent=2))
        if ladder_block is not None:
            print(json.dumps(ladder_block, indent=2))
        print(f"-> {out}")
        for failure in kernel_failures + ladder_failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if (kernel_failures or ladder_failures) else 0

    cached_s, cached_fp, _ = _time_qmkp(
        graph, args.k, args.rng_seed, args.repeat, use_cache=True, workers=args.workers
    )
    uncached_s, uncached_fp, _ = _time_qmkp(
        graph, args.k, args.rng_seed, args.repeat, use_cache=False
    )
    identical = cached_fp == uncached_fp
    sweep = predicate_agreement_sweep(args.sweep_instances)

    trace_block = None
    trace_failures: list[str] = []
    if args.trace is not None:
        from repro.obs import RunLedger, Tracer

        traced_s, traced_fp, tracer = _time_qmkp(
            graph, args.k, args.rng_seed, args.repeat,
            tracer_factory=Tracer, use_cache=True, workers=args.workers,
        )
        if traced_fp != cached_fp:
            trace_failures.append("traced run diverged from untraced run")
        ledger = RunLedger.from_tracer(
            tracer,
            meta={
                "bench": "qmkp_marked_engine",
                "n": args.n, "m": edges, "k": args.k,
                "graph_seed": args.graph_seed, "rng_seed": args.rng_seed,
            },
        )
        drift = ledger.verify(raise_on_drift=False)
        for record in drift:
            trace_failures.append(f"ledger drift: {record}")
        ledger.to_json(args.trace)
        overhead = traced_s / cached_s - 1.0
        if overhead > args.trace_overhead_limit:
            trace_failures.append(
                f"tracing overhead {overhead:.1%} exceeds "
                f"{args.trace_overhead_limit:.0%}"
            )
        trace_block = {
            "ledger": str(args.trace),
            "traced_s": round(traced_s, 4),
            "overhead_fraction": round(overhead, 4),
            "overhead_limit": args.trace_overhead_limit,
            "drift_records": len(drift),
            "verified": not drift,
        }

    report = {
        "bench": "qmkp_marked_engine",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "instance": {
            "generator": "gnm_random_graph",
            "n": args.n,
            "m": edges,
            "k": args.k,
            "graph_seed": args.graph_seed,
            "rng_seed": args.rng_seed,
        },
        "timings_s": {
            "cached": round(cached_s, 4),
            "uncached_scan": round(uncached_s, 4),
            "seed_baseline": args.baseline_s,
        },
        "speedup": {
            "vs_uncached_scan": round(uncached_s / cached_s, 2),
            "vs_seed_baseline": (
                round(args.baseline_s / cached_s, 2) if args.baseline_s else None
            ),
        },
        "result": cached_fp,
        "identical_cached_vs_uncached": identical,
        "predicate_agreement": sweep,
        "kernels": kernel_block,
        "ladder": ladder_block,
        "trace": trace_block,
    }

    out = args.out or Path(__file__).parent / f"BENCH_qmkp_n{args.n}_k{args.k}.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["timings_s"] | report["speedup"], indent=2))
    print(f"identical={identical} mismatches={sweep['mismatches']} -> {out}")
    if trace_block is not None:
        print(
            f"trace: verified={trace_block['verified']} "
            f"overhead={trace_block['overhead_fraction']:.1%} "
            f"-> {trace_block['ledger']}"
        )

    if not identical or sweep["mismatches"]:
        print("FAIL: cached/uncached divergence or predicate mismatch", file=sys.stderr)
        return 1
    if trace_failures or kernel_failures or ladder_failures:
        for failure in trace_failures + kernel_failures + ladder_failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
