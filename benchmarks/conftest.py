"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and writes it to ``results/<artifact>.txt``.  Timing of a
representative kernel goes through pytest-benchmark so
``pytest benchmarks/ --benchmark-only`` reports machine-local numbers
alongside the table artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.datasets import annealing_instances, figure1_graph, gate_instances


@pytest.fixture(scope="session")
def gate_graphs():
    return gate_instances()


@pytest.fixture(scope="session")
def annealing_graphs():
    return annealing_instances()


@pytest.fixture(scope="session")
def fig1():
    return figure1_graph()


@pytest.fixture(scope="session")
def qpu():
    """One QPU per session so embeddings are computed once."""
    return SimulatedQPUSampler(hardware=chimera_graph(16), max_call_time_us=None)


@pytest.fixture()
def rng():
    return np.random.default_rng(2024)


def emit(artifact: str, text: str) -> None:
    """Print a table and persist it under results/."""
    from repro.analysis import write_result

    print("\n" + text)
    path = write_result(artifact, text)
    print(f"[written to {path}]")
