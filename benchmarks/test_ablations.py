"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1  phase-oracle Grover vs literal full-circuit simulation (equivalence
    was established in the test suite; here we quantify the speed gap);
A2  slack width: the corrected ``ceil(log2(max+1))`` vs the paper's
    printed ``ceil(log2 max)`` — the paper formula under-allocates at
    powers of two and can break optimality;
A3  per-vertex big-M (paper) vs a single global M — same optima, more
    slack variables;
A4  co-pruning before qMKP — smaller oracles, same answer;
A5  binary search (paper) vs linear descent from the upper bound in
    qMKP — fewer qTKP calls;
A6  chain-noise sensitivity — more fragile chains mean worse costs at
    equal budget.
"""

import time

import numpy as np
import pytest

from conftest import emit
from repro.analysis import format_table
from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.core import build_mkp_qubo, qamkp, qmkp, qtkp
from repro.core.oracle import KCplexOracle
from repro.datasets import figure1_graph
from repro.graphs import co_prune, gnm_random_graph
from repro.grover import PhaseOracleGrover, grover_circuit
from repro.kplex import maximum_kplex_bruteforce
from repro.milp import solve_branch_bound
from repro.quantum import QuantumCircuit, simulate


def test_ablation_phase_oracle_vs_full_circuit(benchmark):
    """A1: the phase-oracle backend is orders of magnitude faster than
    dense simulation of the literal circuit, with identical amplitudes."""
    g = gnm_random_graph(4, 4, seed=0)
    oracle = KCplexOracle(g.complement(), 2, 2)
    marked = [m for m in range(16) if oracle.predicate(m)]
    engine = PhaseOracleGrover(4, marked)
    iters = max(engine.optimal_iterations(), 1)

    # Dense full circuit: textbook MCZ phase oracle on the 4 qubits.
    dense_oracle = QuantumCircuit(4)
    for m in marked:
        values = [(m >> q) & 1 for q in range(4)]
        for q, v in enumerate(values):
            if not v:
                dense_oracle.x(q)
        dense_oracle.mcz([0, 1, 2], 3)
        for q, v in enumerate(values):
            if not v:
                dense_oracle.x(q)
    circuit = grover_circuit(4, dense_oracle, iters)

    t0 = time.perf_counter()
    sv = simulate(circuit)
    dense_s = time.perf_counter() - t0

    run = benchmark(lambda: engine.run(iters))
    assert np.allclose(sv.probabilities(), run.amplitudes**2, atol=1e-9)

    t0 = time.perf_counter()
    engine.run(iters)
    fast_s = time.perf_counter() - t0
    emit(
        "ablation_phase_oracle",
        format_table(
            ["backend", "seconds"],
            [["dense full circuit", f"{dense_s:.6f}"],
             ["phase oracle", f"{fast_s:.6f}"]],
            title="A1: Grover backends on n=4 (identical output "
            "distributions)",
        ),
    )


def test_ablation_slack_width(benchmark):
    """A2: the paper's printed slack width can break optimality."""
    rows = []
    broken = 0
    checked = 0
    for seed in range(10):
        g = gnm_random_graph(6, 7, seed=seed)
        opt = len(maximum_kplex_bruteforce(g, 2))
        fixed = build_mkp_qubo(g, 2, paper_faithful_width=False)
        paper = build_mkp_qubo(g, 2, paper_faithful_width=True)
        if fixed.num_slack_variables == paper.num_slack_variables:
            continue  # no power-of-two slack bound in this instance
        checked += 1
        e_fixed = solve_branch_bound(fixed.bqm).energy
        e_paper = solve_branch_bound(paper.bqm).energy
        assert e_fixed == -opt
        if e_paper != -opt:
            broken += 1
        rows.append((seed, opt, e_fixed, e_paper, e_paper != -opt))
    benchmark(lambda: build_mkp_qubo(gnm_random_graph(6, 7, seed=0), 2))
    assert checked > 0, "expected instances exercising the width difference"
    emit(
        "ablation_slack_width",
        format_table(
            ["seed", "optimum", "min F (corrected)", "min F (paper width)",
             "paper width broke optimum"],
            rows,
            title=f"A2: slack width formulas ({broken}/{checked} "
            "power-of-two instances mis-solved by the printed formula)",
        ),
    )


def test_ablation_global_big_m(benchmark):
    """A3: a global M keeps optima but wastes slack variables."""
    rows = []
    for seed in range(5):
        g = gnm_random_graph(7, 10, seed=seed)
        per_vertex = build_mkp_qubo(g, 2)
        global_m = build_mkp_qubo(g, 2, global_big_m=True)
        assert global_m.num_slack_variables >= per_vertex.num_slack_variables
        rows.append(
            (seed, per_vertex.num_variables, global_m.num_variables)
        )
    benchmark(lambda: build_mkp_qubo(gnm_random_graph(7, 10, seed=0), 2, global_big_m=True))
    emit(
        "ablation_global_big_m",
        format_table(
            ["seed", "variables (per-vertex M)", "variables (global M)"],
            rows,
            title="A3: per-vertex vs global big-M",
        ),
    )


def test_ablation_reduction_before_qmkp(benchmark):
    """A4: co-pruning shrinks the instance the oracle must encode.

    Realistic pipeline: a greedy k-plex gives a lower bound L, the
    reduction may drop anything not in a (L+1)-or-larger plex, and the
    final answer is the better of the greedy seed and the quantum
    search on the reduced graph.
    """
    from repro.kplex import greedy_kplex

    g = gnm_random_graph(10, 16, seed=3)
    plain = qmkp(g, 2, rng=np.random.default_rng(4))

    seed_plex = greedy_kplex(g, 2)
    reduced = co_prune(g, 2, lower_bound=len(seed_plex))
    assert reduced.graph.num_vertices < g.num_vertices

    if reduced.graph.num_vertices:
        quantum = qmkp(reduced.graph, 2, rng=np.random.default_rng(4))
        candidate = reduced.translate_back(quantum.subset)
        pruned_units = quantum.gate_units
    else:
        candidate = frozenset()
        pruned_units = 0
    best = max((seed_plex, candidate), key=len)
    assert len(best) == plain.size

    benchmark(lambda: co_prune(g, 2, lower_bound=len(seed_plex)))
    emit(
        "ablation_reduction",
        format_table(
            ["pipeline", "vertices searched", "gate units"],
            [
                ("qMKP", g.num_vertices, plain.gate_units),
                ("greedy + co-prune + qMKP",
                 reduced.graph.num_vertices, pruned_units),
            ],
            title="A4: graph reduction ahead of the quantum search",
        ),
    )


def test_ablation_binary_vs_linear_search(benchmark):
    """A5: binary search needs fewer qTKP probes than linear descent."""
    g = figure1_graph()
    rng = np.random.default_rng(3)
    binary = qmkp(g, 2, rng=rng)

    # Linear descent: try T = upper bound, upper bound - 1, ... until hit.
    linear_calls = 0
    linear_units = 0
    answer = None
    for threshold in range(6, 0, -1):
        probe = qtkp(g, 2, threshold, rng=np.random.default_rng(3))
        linear_calls += 1
        linear_units += probe.gate_units
        if probe.found:
            answer = probe.subset
            break
    assert answer is not None and len(answer) == binary.size
    assert binary.qtkp_calls <= linear_calls
    benchmark(lambda: qmkp(g, 2, rng=np.random.default_rng(3)))
    emit(
        "ablation_search_strategy",
        format_table(
            ["strategy", "qTKP calls", "gate units"],
            [
                ("binary search (paper)", binary.qtkp_calls, binary.gate_units),
                ("linear descent", linear_calls, linear_units),
            ],
            title="A5: threshold search strategies in qMKP",
        ),
    )


@pytest.mark.parametrize("per_link", [0.0, 0.03, 0.15])
def test_ablation_chain_noise(benchmark, annealing_graphs, per_link):
    """A6: costs degrade as chains become more fragile."""
    g = annealing_graphs["D_20_100"]
    sampler = SimulatedQPUSampler(
        hardware=chimera_graph(16),
        chain_break_per_link=per_link,
        max_call_time_us=None,
    )
    result = benchmark.pedantic(
        lambda: qamkp(g, 3, runtime_us=500, solver="qpu", qpu=sampler, seed=9),
        rounds=1,
    )
    emit(
        f"ablation_chain_noise_{per_link}",
        format_table(
            ["chain break per link", "cost"],
            [[per_link, f"{result.cost:.1f}"]],
            title="A6: chain fragility vs solution cost (D_20_100)",
        ),
    )


def test_ablation_anytime_comparison(benchmark, gate_graphs):
    """A7: anytime behaviour — both searches are progressive.

    qMKP surfaces feasible plexes during its binary search; branch and
    bound improves its incumbent as it explores.  Normalised
    area-under-curve over the calibrated work model compares them as
    anytime algorithms (1.0 = optimum instantly).
    """
    from repro.analysis import AnytimeCurve, RuntimeModel, curve_from_qmkp

    g = gate_graphs["G_10_23"]
    quantum = qmkp(g, 2, rng=np.random.default_rng(5))

    from repro.kplex import maximum_kplex

    events = []
    classical = maximum_kplex(
        g, 2, warm_start=False,
        on_incumbent=lambda subset, nodes: events.append((nodes, len(subset))),
    )
    benchmark(lambda: qmkp(g, 2, rng=np.random.default_rng(5)))

    model = RuntimeModel.calibrated(
        anchor_nodes=classical.stats.nodes,
        anchor_gate_units=quantum.gate_units,
        anchor_n=g.num_vertices,
    )
    q_curve = AnytimeCurve.from_events(
        [
            (model.quantum_time_us(e.cumulative_gate_units), float(e.size))
            for e in quantum.progression
        ]
    )
    c_curve = AnytimeCurve.from_events(
        [
            (model.classical_time_us(nodes, g.num_vertices), float(size))
            for nodes, size in events
        ]
    )
    horizon = max(
        model.quantum_time_us(quantum.gate_units),
        model.classical_time_us(classical.stats.nodes, g.num_vertices),
    )
    q_auc = q_curve.normalized_auc(horizon, quantum.size)
    c_auc = c_curve.normalized_auc(horizon, classical.size)
    assert quantum.size == classical.size
    emit(
        "ablation_anytime",
        format_table(
            ["algorithm", "final size", "first result (model us)",
             "anytime AUC"],
            [
                ("qMKP", quantum.size, f"{q_curve.budgets[0]:.1f}",
                 f"{q_auc:.3f}"),
                ("branch-and-search", classical.size,
                 f"{c_curve.budgets[0]:.1f}", f"{c_auc:.3f}"),
            ],
            title="A7: anytime comparison on G_10_23 (calibrated model time)",
        ),
    )
