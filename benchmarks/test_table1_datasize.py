"""E1 — Table I: dataset sizes handled per algorithm family.

The paper positions its experiments against prior quantum graph work by
the instance sizes each can handle: maximum clique (n = 2), k-clique
(n = 4), qMKP (n = 10, m = 23), qaMKP (n = 30, m = 300).  This bench
certifies our pipelines actually process the qMKP/qaMKP rows end to
end and regenerates the table.
"""

import numpy as np

from conftest import emit
from repro.analysis import format_table
from repro.core import qamkp, qmkp


def test_table1_dataset_sizes(benchmark, gate_graphs, annealing_graphs, qpu):
    g_qmkp = gate_graphs["G_10_23"]
    g_qamkp = annealing_graphs["D_30_300"]

    def qmkp_flagship():
        return qmkp(g_qmkp, 2, rng=np.random.default_rng(0))

    result = benchmark(qmkp_flagship)
    assert result.size == 6

    annealed = qamkp(g_qamkp, 3, runtime_us=200, solver="qpu", qpu=qpu, seed=0)
    assert annealed.repaired_size >= 1

    rows = [
        ("Maximum clique", "O*(2^(n/2)) [Chang et al. 2018]", 2, 4, "prior work"),
        ("k-clique", "O*(2^(n/2)) [Metwalli et al. 2020]", 4, 4, "prior work"),
        ("Maximum k-plex", "O*(2^(n/2)) [qMKP]", 10, 23, "verified here"),
        ("Maximum k-plex", "-- [qaMKP]", 30, 300, "verified here"),
    ]
    emit(
        "table1_datasize",
        format_table(
            ["problem", "complexity & work", "n", "m", "status"],
            rows,
            title="Table I: dataset sizes of quantum graph-database works",
        ),
    )
