"""E4 — Table III: qMKP across k = 2..5 on the dense G_10_37 instance.

Paper claims checked here: runtime grows only marginally with k
(about 7% from k = 2 to k = 5, since k only touches the degree
comparison — a minor oracle component); the BS speedup is sustained;
first-result behaviour and the error probability are essentially
independent of k.

Note on optima: the paper's stated profile (6, 6, 6, 7) is unattainable
for ANY graph with n = 10 and m = 37 (see repro.datasets); our pinned
instance has the certified profile (7, 8, 10, 10).
"""

import numpy as np

from conftest import emit
from repro.analysis import RuntimeModel, format_table
from repro.core import qmkp
from repro.datasets import GATE_INSTANCES
from repro.kplex import maximum_kplex

KS = (2, 3, 4, 5)


def test_table3_vary_k(benchmark, gate_graphs):
    g = gate_graphs["G_10_37"]
    expected = GATE_INSTANCES["G_10_37"].known_optima

    bs_runs = {k: maximum_kplex(g, k) for k in KS}
    qmkp_runs = {k: qmkp(g, k, rng=np.random.default_rng(21)) for k in KS}
    benchmark(lambda: qmkp(g, 3, rng=np.random.default_rng(21)))

    model = RuntimeModel.calibrated(
        anchor_nodes=bs_runs[2].stats.nodes,
        anchor_gate_units=qmkp_runs[2].gate_units,
        anchor_n=g.num_vertices,
    )

    rows = []
    gate_units = []
    for k in KS:
        bs, qm = bs_runs[k], qmkp_runs[k]
        assert qm.size == expected[k]
        assert bs.size == expected[k]
        bs_us = model.classical_time_us(bs.stats.nodes, g.num_vertices)
        qm_us = model.quantum_time_us(qm.gate_units)
        first = qm.progression[0]
        gate_units.append(qm.gate_units)
        rows.append(
            (
                k,
                qm.size,
                f"{bs_us:.1f}",
                f"{qm_us:.1f}",
                f"{model.quantum_time_us(first.cumulative_gate_units):.1f}",
                first.size,
                qm.oracle_calls,
            )
        )

    # Per-oracle-call cost barely moves with k: the degree comparison is
    # a minor component (paper: ~7% total growth from k=2 to k=5).
    per_call = [
        qmkp_runs[k].probes[0].oracle_costs.total for k in KS
    ]
    assert max(per_call) <= 1.25 * min(per_call)

    emit(
        "table3_vary_k",
        format_table(
            [
                "k", "max k-plex", "BS (model us)", "qMKP (model us)",
                "first-result (us)", "first size", "oracle calls",
            ],
            rows,
            title="Table III: qMKP on G_10_37 for k=2..5 "
            "(optima profile (7,8,10,10); the paper's (6,6,6,7) is "
            "infeasible at n=10, m=37 — see EXPERIMENTS.md)",
        ),
    )
