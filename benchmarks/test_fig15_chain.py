"""E11 — Fig. 15: logical variables, physical qubits, chain length vs n.

The paper embeds the k = 3 QUBO for graphs of n = 10..43 vertices and
tracks three curves: logical binary variables (growing as O(n log n),
40 -> 258), physical qubits (faster growth, 79 -> 2591), and average
chain length (2 -> ~10 on Pegasus hardware).

Our Chimera-family topologies are sparser than Pegasus, so chain
lengths are larger in absolute terms (see EXPERIMENTS.md); the asserted
shapes are the paper's: variable count within the O(n log n) envelope,
physical qubits growing super-linearly relative to variables, and
monotone non-decreasing chain length.
"""

import math

from conftest import emit
from repro.analysis import format_table
from repro.annealing import SimulatedQPUSampler, chimera_graph
from repro.core import build_mkp_qubo
from repro.datasets import chain_experiment_graph

SIZES = (10, 15, 20, 25, 30, 36, 43)


def test_fig15_chain_growth(benchmark):
    qpu = SimulatedQPUSampler(hardware=chimera_graph(16), max_call_time_us=None)

    def embed_one():
        model = build_mkp_qubo(chain_experiment_graph(20), 3)
        sampler = SimulatedQPUSampler(
            hardware=chimera_graph(16), max_call_time_us=None
        )
        return sampler.embed(model.bqm)

    benchmark(embed_one)

    rows = []
    variables, physical, chains = [], [], []
    for n in SIZES:
        g = chain_experiment_graph(n)
        model = build_mkp_qubo(g, 3)
        emb = qpu.embed(model.bqm)
        variables.append(model.num_variables)
        physical.append(emb.num_physical_qubits)
        chains.append(emb.average_chain_length)
        rows.append(
            (
                n,
                model.num_variables,
                emb.num_physical_qubits,
                f"{emb.average_chain_length:.2f}",
                f"{n * (1 + math.ceil(math.log2(n)) + 1)}",
            )
        )

    # O(n log n) variable envelope.
    for n, v in zip(SIZES, variables):
        assert v <= n * (1 + math.ceil(math.log2(n)) + 1)
        assert v >= n  # at least the vertex variables

    # Variables grow monotonically; physical qubits grow faster
    # (chain length increases), and chain length is non-decreasing.
    assert variables == sorted(variables)
    assert physical == sorted(physical)
    assert all(b >= a - 1e-9 for a, b in zip(chains, chains[1:]))
    assert physical[-1] / physical[0] > variables[-1] / variables[0]

    emit(
        "fig15_chain",
        format_table(
            ["n", "logical variables", "physical qubits",
             "avg chain length", "n(1+ceil(log2 n)+1) bound"],
            rows,
            title="Fig. 15: embedding growth with graph size "
            "(k=3, density 0.7, Chimera-family hardware)",
        ),
    )
