"""E2 — Fig. 12: amplitude distribution during qTKP's iterations.

The paper runs qTKP (k = 2, unique size-4 solution) on the Fig. 1 graph
with 20k shots and plots the measured frequency over the 64 basis
states before iterating and after iterations 1, 3, and 6.  Checked
shapes: uniform start; solution probability ~20.5% after one round;
error probability below 1% at the final (6th) round and within the
pi^2/(4I)^2 bound.
"""

import numpy as np
import pytest

from conftest import emit
from repro.analysis import bound_error, format_table
from repro.core.oracle import KCplexOracle
from repro.grover import PhaseOracleGrover

SHOTS = 20_000
SNAPSHOTS = (0, 1, 3, 6)


def _engine(fig1):
    oracle = KCplexOracle(fig1.complement(), 2, 4)
    return PhaseOracleGrover(6, oracle.predicate)


def test_fig12_amplitude_distribution(benchmark, fig1):
    engine = _engine(fig1)
    assert engine.num_marked == 1  # the paper's unique solution
    solution = next(iter(engine.marked))

    run = benchmark(lambda: engine.run(6, snapshot_at=SNAPSHOTS))

    rng = np.random.default_rng(7)
    rows = []
    for it in SNAPSHOTS:
        amps = run.amplitude_snapshots[it]
        probs = amps**2
        counts = rng.multinomial(SHOTS, probs / probs.sum())
        success = probs[solution]
        rows.append(
            (
                f"iteration {it}",
                f"{success:.4f}",
                f"{1 - success:.4f}",
                int(counts[solution]),
                f"{bound_error(it):.4f}" if it else "n/a",
            )
        )

    # Shape criteria from the paper's narrative.
    p0 = run.amplitude_snapshots[0][solution] ** 2
    p1 = run.amplitude_snapshots[1][solution] ** 2
    p6 = run.amplitude_snapshots[6][solution] ** 2
    assert p0 == pytest.approx(1 / 64)
    # Paper reports 20.5% after round 1; ideal Grover gives exactly
    # sin^2(3*asin(1/8)) = 13.5% — we assert the exact value and record
    # the deviation in EXPERIMENTS.md.
    assert p1 == pytest.approx(0.1348, abs=0.01)
    assert 1 - p6 < 0.01                          # paper: 0.075% at round 6
    assert 1 - p6 <= bound_error(6)

    emit(
        "fig12_amplitude",
        format_table(
            ["state", "P(solution)", "error prob", f"hits/{SHOTS}", "pi^2/(4I)^2"],
            rows,
            title="Fig. 12: solution amplitude vs Grover iteration "
            "(Fig. 1 graph, k=2, T=4, M=1)",
        ),
    )
