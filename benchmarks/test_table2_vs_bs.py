"""E3 — Table II: qMKP vs the classical BS baseline across sizes.

The paper reports, per instance (k = 2): the optimum size, BS and qMKP
runtimes, the time and size of qMKP's first feasible result, and the
error probability.  Absolute microseconds are hardware-bound, so the
harness uses the calibrated work model of
:mod:`repro.analysis.runtime_model` — anchored on the paper's
``G_{10,23}`` row — and reports raw work counts alongside.

Shape criteria: optima match (4, 4, 5, 6); qMKP beats BS on every row;
the first feasible result arrives within ~35% of the qMKP budget with
at least half the optimal size; the error probability is tiny and
shrinks as n grows.
"""

import numpy as np

from conftest import emit
from repro.analysis import RuntimeModel, format_table
from repro.core import qmkp
from repro.kplex import maximum_kplex

INSTANCES = ("G_7_8", "G_8_10", "G_9_15", "G_10_23")
EXPECTED_OPTIMA = {"G_7_8": 4, "G_8_10": 4, "G_9_15": 5, "G_10_23": 6}
K = 2


def _qmkp_error_probability(result) -> float:
    """Chance the whole binary search returned a suboptimal answer."""
    failure = 0.0
    for probe in result.probes:
        if probe.num_marked > 0:
            per_attempt = 1.0 - probe.success_probability
            failure = 1.0 - (1.0 - failure) * (1.0 - per_attempt ** 8)
    return failure


def test_table2_qmkp_vs_bs(benchmark, gate_graphs):
    bs_runs = {name: maximum_kplex(gate_graphs[name], K) for name in INSTANCES}
    qmkp_runs = {
        name: qmkp(gate_graphs[name], K, rng=np.random.default_rng(11))
        for name in INSTANCES
    }
    benchmark(lambda: qmkp(gate_graphs["G_10_23"], K, rng=np.random.default_rng(11)))

    anchor = "G_10_23"
    model = RuntimeModel.calibrated(
        anchor_nodes=bs_runs[anchor].stats.nodes,
        anchor_gate_units=qmkp_runs[anchor].gate_units,
        anchor_n=gate_graphs[anchor].num_vertices,
    )

    rows = []
    for name in INSTANCES:
        g = gate_graphs[name]
        bs, qm = bs_runs[name], qmkp_runs[name]
        assert bs.size == EXPECTED_OPTIMA[name]
        assert qm.size == EXPECTED_OPTIMA[name]

        bs_us = model.classical_time_us(bs.stats.nodes, g.num_vertices)
        qm_us = model.quantum_time_us(qm.gate_units)
        first = qm.progression[0]
        first_us = model.quantum_time_us(first.cumulative_gate_units)
        error = _qmkp_error_probability(qm)

        # Shape criteria.
        assert qm_us < bs_us, f"{name}: quantum must win under the model"
        assert first_us / qm_us < 0.5
        assert first.size * 2 >= qm.size
        assert error < 1e-2

        rows.append(
            (
                name,
                qm.size,
                f"{bs_us:.1f}",
                f"{qm_us:.1f}",
                f"{bs_us / qm_us:.2f}x",
                f"{first_us:.1f}",
                first.size,
                f"{error:.1e}",
                bs.stats.nodes,
                qm.gate_units,
            )
        )

    # Error probability shrinks as instances grow (paper's trend).
    errors = [float(r[7]) for r in rows]
    assert errors[-1] <= errors[0]

    emit(
        "table2_vs_bs",
        format_table(
            [
                "dataset", "max 2-plex", "BS (model us)", "qMKP (model us)",
                "speedup", "first-result (us)", "first size",
                "error prob", "BS nodes", "qMKP gates",
            ],
            rows,
            title="Table II: qMKP vs BS, k=2 "
            "(model microseconds, calibrated on the G_10_23 anchor)",
        ),
    )
