"""E8/E9 — Figs. 13-14: objective cost vs runtime for the four solvers.

The paper plots cost against runtime (log scale) for qaMKP (QPU),
haMKP (hybrid), SA, and MILP (Gurobi) on D_20_100 and D_30_300
(k = 3, R = 2, Delta-t = 1 us).  Headline shapes:

* qaMKP converges fast at small budgets (well below 10^4 us) — it
  reaches a good sub-optimal cost orders of magnitude before MILP;
* MILP and the hybrid find the true optimum given large budgets;
* SA sits between: decent costs, slow final convergence;
* qaMKP's convergence is weaker on D_30_300 than on D_20_100 (longer
  chains), leaving a gap to SA at the largest QPU budget.
"""

import pytest

from conftest import emit
from repro.analysis import format_table
from repro.core import build_mkp_qubo, qamkp
from repro.kplex import maximum_kplex

QPU_BUDGETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0)
SA_BUDGETS = (10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0)
MILP_BUDGETS = (10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0)


def _sweep(graph, solver, budgets, qpu, seed):
    out = []
    for budget in budgets:
        result = qamkp(
            graph, 3, runtime_us=budget, delta_t_us=1.0,
            solver=solver, qpu=qpu, seed=seed,
        )
        out.append((budget, result.cost))
    return out


@pytest.mark.parametrize(
    ("artifact", "instance"),
    [("fig13_runtime_d20", "D_20_100"), ("fig14_runtime_d30", "D_30_300")],
)
def test_cost_versus_runtime_curves(benchmark, annealing_graphs, qpu, artifact, instance):
    g = annealing_graphs[instance]
    optimum = maximum_kplex(g, 3).size

    if artifact == "fig13_runtime_d20":
        benchmark(
            lambda: qamkp(g, 3, runtime_us=100.0, solver="qpu", qpu=qpu, seed=5)
        )
    else:
        benchmark.pedantic(
            lambda: qamkp(g, 3, runtime_us=100.0, solver="qpu", qpu=qpu, seed=5),
            rounds=3,
        )

    qpu_curve = _sweep(g, "qpu", QPU_BUDGETS, qpu, seed=8)
    sa_curve = _sweep(g, "sa", SA_BUDGETS, qpu, seed=8)
    milp_curve = _sweep(g, "milp", MILP_BUDGETS, qpu, seed=8)
    hybrid = qamkp(g, 3, solver="hybrid", seed=8)

    rows = (
        [("qaMKP", f"{b:.0f}", f"{c:.1f}") for b, c in qpu_curve]
        + [("SA", f"{b:.0f}", f"{c:.1f}") for b, c in sa_curve]
        + [("MILP", f"{b:.0f}", f"{c:.1f}") for b, c in milp_curve]
        + [("haMKP", f"{hybrid.runtime_us:.0f}", f"{hybrid.cost:.1f}")]
    )

    # --- shape criteria ------------------------------------------------
    qpu_costs = [c for _b, c in qpu_curve]
    assert qpu_costs[-1] <= qpu_costs[0], "qaMKP cost must fall with budget"

    # The hybrid solver reaches the optimum at its 3 s floor (paper: the
    # hybrid "almost always finds a solution within this period").
    assert hybrid.cost == -optimum

    # MILP improves with budget.  (The paper's Gurobi reaches the
    # optimum around 10^6 us; open-source HiGHS on the same
    # linearisation is slower — see EXPERIMENTS.md — so we assert
    # monotone improvement rather than optimality.)
    milp_costs = [c for _b, c in milp_curve]
    assert milp_costs[-1] <= milp_costs[0]

    # The paper's headline: qaMKP reaches a good sub-optimal cost orders
    # of magnitude before MILP.  Compare the budget each needs to get
    # below the MILP early cost.
    milp_early = milp_costs[0]
    qpu_first_better = next(
        (b for b, c in qpu_curve if c < milp_early), None
    )
    assert qpu_first_better is not None
    assert qpu_first_better <= milp_curve[0][0] / 10, (
        "qaMKP must undercut MILP's early cost at least 10x earlier"
    )

    emit(
        artifact,
        format_table(
            ["solver", "runtime (us)", "cost"],
            rows,
            title=f"{'Fig. 13' if instance == 'D_20_100' else 'Fig. 14'}: "
            f"cost vs runtime on {instance} (k=3, R=2, Delta-t=1 us); "
            f"optimum cost = {-optimum}",
        ),
    )


def test_fig14_degradation_vs_fig13(benchmark, annealing_graphs, qpu):
    """The paper's cross-figure claim: qaMKP converges relatively worse
    on D_30_300 than on D_20_100 because its chains are longer."""
    gaps = {}
    for instance in ("D_20_100", "D_30_300"):
        g = annealing_graphs[instance]
        qpu_res = qamkp(g, 3, runtime_us=10_000.0, solver="qpu", qpu=qpu, seed=8)
        sa_res = qamkp(g, 3, runtime_us=10_000.0, solver="sa", seed=8)
        gaps[instance] = (qpu_res.cost - sa_res.cost, qpu_res.info["average_chain_length"])
    benchmark(
        lambda: qamkp(
            annealing_graphs["D_30_300"], 3, runtime_us=1_000.0,
            solver="qpu", qpu=qpu, seed=8,
        )
    )
    # Longer chains on the bigger instance...
    assert gaps["D_30_300"][1] > gaps["D_20_100"][1]
    # ... and a larger cost gap to SA at the same budget.
    assert gaps["D_30_300"][0] >= gaps["D_20_100"][0]
