"""E7 — Table VI: the penalty weight R (k = 3, Delta-t = 1 us).

The paper sweeps R over {1.1, 2, 4, 8} on D_10_40, bolding the cells
where the decoded solution is optimal, and concludes that R must exceed
1 but "should not deviate far from 1": the quadratic penalty is already
severe, so large R only slows the search down.

Our pinned D_10_40 embeds with short chains and every R finds the
optimum almost immediately (the paper's instance was evidently harder —
see EXPERIMENTS.md), so the discriminating sweep is also run on
D_20_100, where the R ordering is unambiguous.  Shape criteria:

* on D_10_40, R = 2 reaches the optimum at a budget no later than R = 8;
* on D_20_100, the mean cost over the budget grid increases with R, and
  the best cost achieved by R <= 2 beats the best achieved by R >= 4.
"""

from conftest import emit
from repro.analysis import format_table
from repro.core import qamkp
from repro.kplex import maximum_kplex

RS = (1.1, 2.0, 4.0, 8.0)
BUDGETS_US = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


def _sweep(graph, optimum, qpu):
    cells: dict[float, list[tuple[float, bool]]] = {}
    for r_value in RS:
        row = []
        for budget in BUDGETS_US:
            result = qamkp(
                graph, 3, penalty=r_value, runtime_us=budget, delta_t_us=1.0,
                solver="qpu", qpu=qpu, seed=33,
            )
            optimal = result.feasible and len(result.subset) == optimum
            row.append((result.cost, optimal))
        cells[r_value] = row
    return cells


def _rows(cells):
    return [
        (r_value, *[f"{c:.1f}" + ("*" if opt else "") for c, opt in cells[r_value]])
        for r_value in RS
    ]


def test_table6_penalty_r(benchmark, annealing_graphs, qpu):
    g_small = annealing_graphs["D_10_40"]
    g_hard = annealing_graphs["D_20_100"]
    opt_small = maximum_kplex(g_small, 3).size
    opt_hard = maximum_kplex(g_hard, 3).size

    benchmark(
        lambda: qamkp(g_small, 3, penalty=2.0, runtime_us=100.0,
                      delta_t_us=1.0, solver="qpu", qpu=qpu, seed=1)
    )

    small = _sweep(g_small, opt_small, qpu)
    hard = _sweep(g_hard, opt_hard, qpu)

    # D_10_40: R = 2 becomes optimal no later than R = 8.
    def first_optimal(row):
        return next((b for b, (_c, opt) in zip(BUDGETS_US, row) if opt), None)

    first_2 = first_optimal(small[2.0])
    first_8 = first_optimal(small[8.0])
    assert first_2 is not None
    if first_8 is not None:
        # Allow one budget-grid step of sampling jitter.
        assert first_2 <= 2 * first_8

    # D_20_100: cost scales with R (the penalty is "inherently severe").
    means = {r: sum(c for c, _o in hard[r]) / len(BUDGETS_US) for r in RS}
    assert means[1.1] <= means[2.0] <= means[4.0] <= means[8.0]
    best_small_r = min(min(c for c, _o in hard[r]) for r in (1.1, 2.0))
    best_large_r = min(min(c for c, _o in hard[r]) for r in (4.0, 8.0))
    assert best_small_r <= best_large_r

    emit(
        "table6_penalty_r",
        format_table(
            ["R"] + [f"{int(b)} us" for b in BUDGETS_US],
            _rows(small),
            title="Table VI: qaMKP cost vs runtime per penalty R on "
            "D_10_40 (k=3, Delta-t=1 us; '*' = decoded solution optimal)",
        )
        + "\n\n"
        + format_table(
            ["R"] + [f"{int(b)} us" for b in BUDGETS_US],
            _rows(hard),
            title="Table VI (extended): the same sweep on D_20_100, "
            "where the R ordering discriminates",
        ),
    )
