"""E5 — Table IV: runtime share of the three oracle components.

The paper attributes oracle runtime to degree counting, degree
comparison, and size determination, finding degree counting dominant
(77.5%-88.6%) with a share that grows with n — the asymptotic gap
between its O(n^2 log n) gates and the O(n log n) of the other two.
We regenerate the split from the constructed circuits' per-component
gate counts.
"""

from conftest import emit
from repro.analysis import format_table
from repro.core.oracle import KCplexOracle

INSTANCES = ("G_7_8", "G_8_10", "G_9_15", "G_10_23")
K = 2


def _share_rows(gate_graphs, adder):
    rows = []
    count_shares = []
    for name in INSTANCES:
        oracle = KCplexOracle(gate_graphs[name].complement(), K, 3, adder=adder)
        shares = oracle.component_costs().shares()
        count_shares.append(shares["degree_count"])
        rows.append(
            (
                name,
                f"{100 * shares['degree_count']:.1f}",
                f"{100 * shares['degree_compare']:.1f}",
                f"{100 * shares['size_check']:.1f}",
            )
        )
    return rows, count_shares


def test_table4_oracle_component_share(benchmark, gate_graphs):
    benchmark(
        lambda: KCplexOracle(gate_graphs["G_10_23"].complement(), K, 3)
    )
    compact_rows, compact_shares = _share_rows(gate_graphs, "compact")
    faithful_rows, faithful_shares = _share_rows(gate_graphs, "full_adder")

    # Shape criteria: degree count dominates everywhere.  The growth
    # trend is asserted on a fixed-density series — across the paper's
    # specific instances the complement edge count (which drives degree
    # counting) does not grow uniformly with n, so the share dips where
    # the complement thins out.
    for shares in (compact_shares, faithful_shares):
        assert all(s > 0.5 for s in shares)
    from repro.graphs import gnm_random_graph

    density_series = []
    for n in (6, 8, 10, 12):
        g = gnm_random_graph(n, round(0.5 * n * (n - 1) / 2), seed=0)
        oracle = KCplexOracle(g.complement(), K, 3)
        density_series.append(oracle.component_costs().shares()["degree_count"])
    assert density_series[-1] > density_series[0]

    headers = ["dataset", "degree count (%)", "degree comparison (%)",
               "size determination (%)"]
    emit(
        "table4_oracle_share",
        format_table(
            headers, compact_rows,
            title="Table IV: oracle component shares "
            "(compact incrementer accumulation)",
        )
        + "\n\n"
        + format_table(
            headers, faithful_rows,
            title="Table IV (paper-faithful Fig. 7 full-adder chains)",
        ),
    )
