#!/usr/bin/env python
"""Dynamic-graph smoke check: edit-stream re-solves, crashed and cold.

The CI scenario, end to end through the real CLI:

1. ``qmkp watch GRAPH EDITS --check`` solves the whole edit stream
   incrementally **and** re-solves every post-edit graph cold in the
   same process, failing (exit 4) on any non-byte-identical step — the
   incremental-equals-cold acceptance gate;
2. the same stream runs again with ``--checkpoint-dir`` under
   ``QMKP_CRASH_AFTER_PROBES``, SIGKILLing the process mid-stream and
   re-launching until it completes — every casualty must die by
   SIGKILL, at least one crash must actually happen, and the final
   step records must match the cold run's byte for byte once the
   volatile resume/reuse counters are stripped;
3. both runs' ledgers must reconcile (the CLI exits 3 on drift).

Exits nonzero with a diagnostic on any deviation.  No arguments; the
work happens in a temporary directory.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")

def edit_script(graph) -> str:
    """Deterministic mixed stream valid for ``graph``: two deletions,
    two insertions, one vertex add."""
    present = sorted(tuple(sorted(e)) for e in graph.edges)
    n = graph.num_vertices
    absent = sorted(
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u, v) not in set(present)
    )
    lines = ["# deterministic mixed stream"]
    lines.append("del {} {}".format(*present[0]))
    lines.append("add {} {}".format(*absent[0]))
    lines.append("addv")
    lines.append("add {} {}".format(*absent[-1]))
    lines.append("del {} {}".format(*present[-1]))
    return "\n".join(lines) + "\n"


#: Per-step fields that legitimately differ between a crash-resumed run
#: and an undisturbed one (resume bookkeeping, not answers or costs).
VOLATILE = ("resumed_probes", "reused_partitions", "check")


def run_cli(args: list[str], cwd: str, crash_after: int | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    for hook in ("QMKP_CRASH_AFTER_PROBES", "QMKP_SIGINT_AFTER_PROBES"):
        env.pop(hook, None)
    if crash_after is not None:
        env["QMKP_CRASH_AFTER_PROBES"] = str(crash_after)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def stable_steps(doc: dict) -> list[dict]:
    return [
        {key: value for key, value in step.items() if key not in VOLATILE}
        for step in doc["steps"]
    ]


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="dynamic-smoke-")
    sys.path.insert(0, SRC)
    from repro.graphs import gnm_random_graph, write_edge_list

    instance = gnm_random_graph(8, 16, seed=1)
    graph = Path(tmp) / "graph.txt"
    write_edge_list(instance, graph)
    edits = Path(tmp) / "edits.txt"
    edits.write_text(edit_script(instance))
    watch = ["watch", str(graph), str(edits), "-k", "2", "--seed", "7"]

    # 1. Incremental vs cold, gated in-process by --check.
    cold = run_cli(
        [*watch, "--check", "--out", str(Path(tmp) / "cold.json")], tmp
    )
    if cold.returncode != 0:
        fail(
            f"cold watch --check exited {cold.returncode}\n"
            f"{cold.stdout}{cold.stderr}"
        )
    if "(check ok)" not in cold.stdout or "MISMATCH" in cold.stdout:
        fail(f"cold watch did not report per-step checks:\n{cold.stdout}")

    # 2. Crash-until-done under the deterministic SIGKILL hook.  Each
    # casualty must die by SIGKILL; per-step WALs under the persistent
    # checkpoint dir guarantee at least one fresh probe per launch, so
    # the loop terminates.
    crash_args = [
        *watch, "--checkpoint-dir", str(Path(tmp) / "wals"),
        "--out", str(Path(tmp) / "resumed.json"),
    ]
    crashes = 0
    for _ in range(40):
        proc = run_cli(crash_args, tmp, crash_after=2)
        if proc.returncode == 0:
            break
        if proc.returncode != -9:
            fail(
                f"crash run exited {proc.returncode}, expected SIGKILL\n"
                f"{proc.stderr}"
            )
        crashes += 1
    else:
        fail("crash loop never completed")
    if crashes < 1:
        fail("the crash hook never fired — the smoke lost its chaos")

    # 3. Crash-resumed step records must match the cold run's byte for
    # byte once volatile resume counters are stripped.
    cold_doc = json.loads((Path(tmp) / "cold.json").read_text())
    resumed_doc = json.loads((Path(tmp) / "resumed.json").read_text())
    if stable_steps(cold_doc) != stable_steps(resumed_doc):
        fail(
            "crash-resumed stream diverged from the cold stream:\n"
            f"cold:    {json.dumps(stable_steps(cold_doc))}\n"
            f"resumed: {json.dumps(stable_steps(resumed_doc))}"
        )
    resumed_total = sum(s.get("resumed_probes", 0) for s in resumed_doc["steps"])
    if resumed_total < 1:
        fail("no probes were replayed — the resume path never engaged")

    print(
        f"OK: {len(cold_doc['steps'])} steps byte-identical to cold solves "
        f"through {crashes} SIGKILL(s), {resumed_total} probe(s) replayed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
