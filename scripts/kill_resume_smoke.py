#!/usr/bin/env python
"""Kill-and-resume smoke check for the qMKP checkpoint journal.

The CI scenario, end to end through the real CLI:

1. run ``qmkp`` uninterrupted to establish the reference answer;
2. run it again with ``--checkpoint`` and ``QMKP_CRASH_AFTER_PROBES=1``
   so the process SIGKILLs itself right after the first probe record is
   fsynced — a deterministic mid-search crash;
3. resume from the same journal and require the **bit-identical** final
   answer plus a reconciled run ledger (the CLI exits 3 on drift).

Exits nonzero with a diagnostic on any deviation.  No arguments; the
work happens in a temporary directory.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")

SOLVE = ["-k", "2", "--solver", "qmkp", "--seed", "7"]


def run_cli(args: list[str], cwd: str, crash_after: int | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if crash_after is not None:
        env["QMKP_CRASH_AFTER_PROBES"] = str(crash_after)
    else:
        env.pop("QMKP_CRASH_AFTER_PROBES", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="kill-resume-")
    graph = Path(tmp) / "graph.txt"
    # gnm(7, 10, seed=1): its qMKP binary search takes three probes, so
    # crashing after the first genuinely lands mid-search.
    sys.path.insert(0, SRC)
    from repro.graphs import gnm_random_graph, write_edge_list

    write_edge_list(gnm_random_graph(7, 10, seed=1), graph)

    reference = run_cli(["solve", str(graph), *SOLVE], tmp)
    if reference.returncode != 0:
        fail(f"reference run failed: {reference.stderr}")
    print("reference answer:")
    print(reference.stdout, end="")

    checkpoint = Path(tmp) / "probe.wal"
    crashed = run_cli(
        ["solve", str(graph), *SOLVE, "--checkpoint", str(checkpoint)],
        tmp,
        crash_after=1,
    )
    if crashed.returncode != -signal.SIGKILL:
        fail(
            f"crash run exited {crashed.returncode}, expected SIGKILL "
            f"({-signal.SIGKILL}): {crashed.stderr}"
        )
    if not checkpoint.exists():
        fail("crash run left no checkpoint journal")
    lines = checkpoint.read_text().splitlines()
    if len(lines) != 2:
        fail(f"journal holds {len(lines)} lines, expected header + 1 probe")
    print(f"crash run SIGKILLed after 1 journaled probe ({checkpoint})")

    ledger_path = Path(tmp) / "ledger.json"
    resumed = run_cli(
        [
            "solve", str(graph), *SOLVE,
            "--checkpoint", str(checkpoint),
            "--trace", str(ledger_path),
        ],
        tmp,
    )
    if resumed.returncode != 0:
        fail(f"resume run exited {resumed.returncode}: {resumed.stderr}")
    if "resumed 1 probe(s)" not in resumed.stdout:
        fail(f"resume run did not report replayed probes:\n{resumed.stdout}")
    if resumed.stdout.splitlines()[-2:] != reference.stdout.splitlines()[-2:]:
        fail(
            "resumed answer differs from the uninterrupted reference:\n"
            f"--- reference ---\n{reference.stdout}"
            f"--- resumed ---\n{resumed.stdout}"
        )
    ledger = json.loads(ledger_path.read_text())
    if not ledger["verified"] or ledger["drift"]:
        fail(f"resumed ledger did not reconcile: {ledger['drift']}")
    print("resume run: bit-identical answer, ledger reconciled")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
