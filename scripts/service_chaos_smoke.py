#!/usr/bin/env python
"""Chaos smoke check for the solver service's crash-resume guarantee.

The CI scenario, end to end through the real supervisor and worker
subprocesses:

1. run a reference batch of jobs on an undisturbed service;
2. run the same batch under a scripted :class:`ChaosPlan` that SIGKILLs
   worker children mid-job — one job killed once, one killed twice
   (cumulative probe counts, since the journal counts resumed records);
3. require every chaos-run answer to be **byte-identical** to its
   reference, every receipt ledger reconciled, and the service metrics
   to account for exactly the scripted crashes and resumes;
4. check the typed backpressure error on an over-capacity queue;
5. run a fleet-shared-cache batch whose publishing worker is SIGKILLed
   mid-publish (after the temp-segment fsync, before the atomic
   rename): the store must hold zero torn segments, the resumed
   attempt must fall back to local enumeration and republish, the
   readers must attach, and every answer must stay byte-identical to
   an undisturbed shared-cache run.

Everything is seeded and scripted — no wall-clock randomness — so a
failure is a regression, never flake.  Exits nonzero with a diagnostic
on any deviation.  No arguments; work happens in a temp directory.
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.graphs import gnm_random_graph, write_edge_list  # noqa: E402
from repro.perf import SharedTableStore  # noqa: E402
from repro.service import (  # noqa: E402
    BackpressureError,
    ChaosPlan,
    JobSpec,
    ServiceConfig,
    Supervisor,
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


async def run_batch(specs, workdir, chaos=None, **config_kwargs):
    config = ServiceConfig(
        workers=config_kwargs.pop("workers", 2), workdir=str(workdir),
        **config_kwargs,
    )
    async with Supervisor(config, chaos=chaos) as sup:
        jobs = [sup.submit(spec) for spec in specs]
        results = await asyncio.gather(
            *(job.result_dict() for job in jobs)
        )
    return jobs, results, sup


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-chaos-"))
    graph = tmp / "graph.txt"
    # gnm(7, 10, seed=1): three qMKP probes, so kills after probes 1
    # and 2 genuinely land mid-search.
    write_edge_list(gnm_random_graph(7, 10, seed=1), graph)
    specs = [
        JobSpec(str(graph), k=2, seed=7, name="job-a"),
        JobSpec(str(graph), k=2, seed=11, name="job-b"),
        JobSpec(str(graph), k=2, solver="bs", name="job-c"),
    ]

    _, reference, _ = asyncio.run(run_batch(specs, tmp / "ref"))
    print("reference answers:")
    for spec, result in zip(specs, reference):
        print(f"  {spec.name}: {json.dumps(result['answer'], sort_keys=True)}")

    # job-a: killed once after probe 1.  job-b: killed after probe 1,
    # resumed, killed again after (cumulative) probe 2, resumed again.
    chaos = ChaosPlan(kills={"job-a": [1], "job-b": [1, 2]})
    jobs, results, sup = asyncio.run(run_batch(specs, tmp / "chaos", chaos))

    for spec, job, result, ref in zip(specs, jobs, results, reference):
        if result["answer"] != ref["answer"]:
            fail(
                f"{spec.name}: chaos answer differs from reference:\n"
                f"  reference: {json.dumps(ref['answer'], sort_keys=True)}\n"
                f"  chaos:     {json.dumps(result['answer'], sort_keys=True)}"
            )
        if not result["verified"]:
            fail(f"{spec.name}: run ledger did not reconcile")
        receipt = json.loads(Path(result["receipt"]).read_text())
        if not receipt["ledger"]["verified"]:
            fail(f"{spec.name}: receipt ledger did not reconcile")
        print(
            f"  {spec.name}: byte-identical after {job.resumes} resume(s), "
            "receipt reconciled"
        )

    counters = sup.tracer.registry.as_dict()["counters"]
    if counters.get("service_worker_crashes") != 3:
        fail(f"expected 3 worker crashes, saw {counters}")
    if counters.get("service_jobs_resumed") != 3:
        fail(f"expected 3 job resumes, saw {counters}")
    if counters.get("service_jobs_completed") != 3:
        fail(f"expected 3 completed jobs, saw {counters}")
    print("service metrics: 3 crashes, 3 resumes, 3 completions")

    # Typed backpressure: an unstarted supervisor drains nothing, so
    # the bounded lane fills deterministically.
    sup2 = Supervisor(ServiceConfig(workers=1, queue_capacity=1,
                                    workdir=str(tmp / "bp")))
    sup2.submit(specs[0])
    try:
        sup2.submit(specs[1])
    except BackpressureError as exc:
        if exc.capacity != 1:
            fail(f"backpressure carried wrong capacity: {exc.capacity}")
        print(f"backpressure: typed rejection ({exc})")
    else:
        fail("over-capacity submit was not rejected")

    # Fleet-shared cache under a mid-publish SIGKILL.  One worker slot
    # keeps the schedule exact: share-0 cold-builds, is killed between
    # the temp-segment fsync and the atomic rename, resumes against an
    # empty store, re-enumerates locally and publishes; share-1/share-2
    # attach the one valid segment.
    shared_specs = [
        JobSpec(str(graph), k=2, seed=7, name=f"share-{i}") for i in range(3)
    ]
    _, shared_ref, _ = asyncio.run(run_batch(
        shared_specs, tmp / "shared-ref", workers=1,
        shared_cache_dir=str(tmp / "cache-ref"),
    ))
    chaos = ChaosPlan(publish_kills={"share-0": [1]})
    _, shared_results, shared_sup = asyncio.run(run_batch(
        shared_specs, tmp / "shared-chaos", workers=1, chaos=chaos,
        shared_cache_dir=str(tmp / "cache-chaos"),
    ))
    for spec, result, ref in zip(shared_specs, shared_results, shared_ref):
        if result["answer"] != ref["answer"]:
            fail(
                f"{spec.name}: shared-cache chaos answer differs:\n"
                f"  reference: {json.dumps(ref['answer'], sort_keys=True)}\n"
                f"  chaos:     {json.dumps(result['answer'], sort_keys=True)}"
            )
        if not result["verified"]:
            fail(f"{spec.name}: shared-cache chaos ledger did not reconcile")
    counters = shared_sup.tracer.registry.as_dict()["counters"]
    if counters.get("service_worker_crashes") != 1:
        fail(f"expected 1 mid-publish crash, saw {counters}")
    if counters.get("service_jobs_resumed") != 1:
        fail(f"expected 1 resume after the publish kill, saw {counters}")
    store = SharedTableStore(tmp / "cache-chaos")
    if len(store) != 1:
        fail(f"expected exactly 1 valid segment after the kill, saw {len(store)}")
    # The kill orphans the fsynced-but-never-renamed temp file; that is
    # the crash-safety contract working, and readers must ignore it.
    leftovers = [
        p.name for p in (tmp / "cache-chaos").iterdir()
        if p.suffix not in (".seg", ".gen")
    ]
    if any(not name.endswith(".tmp") for name in leftovers):
        fail(f"unexpected debris in the segment store: {leftovers}")
    stats = [res["cache"] for res in shared_results]
    publishes = sum(s["shared_publishes"] for s in stats)
    hits = sum(s["shared_hits"] for s in stats)
    if publishes != 1 or hits != 2:
        fail(
            f"expected 1 publish + 2 shared hits after the kill, "
            f"saw publishes={publishes} hits={hits}"
        )
    print(
        "shared cache: mid-publish SIGKILL left old-or-nothing, "
        "resume republished, 2 readers attached, answers byte-identical"
    )

    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
