#!/usr/bin/env python
"""Chaos smoke check for the solver service's crash-resume guarantee.

The CI scenario, end to end through the real supervisor and worker
subprocesses:

1. run a reference batch of jobs on an undisturbed service;
2. run the same batch under a scripted :class:`ChaosPlan` that SIGKILLs
   worker children mid-job — one job killed once, one killed twice
   (cumulative probe counts, since the journal counts resumed records);
3. require every chaos-run answer to be **byte-identical** to its
   reference, every receipt ledger reconciled, and the service metrics
   to account for exactly the scripted crashes and resumes;
4. check the typed backpressure error on an over-capacity queue.

Everything is seeded and scripted — no wall-clock randomness — so a
failure is a regression, never flake.  Exits nonzero with a diagnostic
on any deviation.  No arguments; work happens in a temp directory.
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.graphs import gnm_random_graph, write_edge_list  # noqa: E402
from repro.service import (  # noqa: E402
    BackpressureError,
    ChaosPlan,
    JobSpec,
    ServiceConfig,
    Supervisor,
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


async def run_batch(specs, workdir, chaos=None):
    config = ServiceConfig(workers=2, workdir=str(workdir))
    async with Supervisor(config, chaos=chaos) as sup:
        jobs = [sup.submit(spec) for spec in specs]
        results = await asyncio.gather(
            *(job.result_dict() for job in jobs)
        )
    return jobs, results, sup


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-chaos-"))
    graph = tmp / "graph.txt"
    # gnm(7, 10, seed=1): three qMKP probes, so kills after probes 1
    # and 2 genuinely land mid-search.
    write_edge_list(gnm_random_graph(7, 10, seed=1), graph)
    specs = [
        JobSpec(str(graph), k=2, seed=7, name="job-a"),
        JobSpec(str(graph), k=2, seed=11, name="job-b"),
        JobSpec(str(graph), k=2, solver="bs", name="job-c"),
    ]

    _, reference, _ = asyncio.run(run_batch(specs, tmp / "ref"))
    print("reference answers:")
    for spec, result in zip(specs, reference):
        print(f"  {spec.name}: {json.dumps(result['answer'], sort_keys=True)}")

    # job-a: killed once after probe 1.  job-b: killed after probe 1,
    # resumed, killed again after (cumulative) probe 2, resumed again.
    chaos = ChaosPlan(kills={"job-a": [1], "job-b": [1, 2]})
    jobs, results, sup = asyncio.run(run_batch(specs, tmp / "chaos", chaos))

    for spec, job, result, ref in zip(specs, jobs, results, reference):
        if result["answer"] != ref["answer"]:
            fail(
                f"{spec.name}: chaos answer differs from reference:\n"
                f"  reference: {json.dumps(ref['answer'], sort_keys=True)}\n"
                f"  chaos:     {json.dumps(result['answer'], sort_keys=True)}"
            )
        if not result["verified"]:
            fail(f"{spec.name}: run ledger did not reconcile")
        receipt = json.loads(Path(result["receipt"]).read_text())
        if not receipt["ledger"]["verified"]:
            fail(f"{spec.name}: receipt ledger did not reconcile")
        print(
            f"  {spec.name}: byte-identical after {job.resumes} resume(s), "
            "receipt reconciled"
        )

    counters = sup.tracer.registry.as_dict()["counters"]
    if counters.get("service_worker_crashes") != 3:
        fail(f"expected 3 worker crashes, saw {counters}")
    if counters.get("service_jobs_resumed") != 3:
        fail(f"expected 3 job resumes, saw {counters}")
    if counters.get("service_jobs_completed") != 3:
        fail(f"expected 3 completed jobs, saw {counters}")
    print("service metrics: 3 crashes, 3 resumes, 3 completions")

    # Typed backpressure: an unstarted supervisor drains nothing, so
    # the bounded lane fills deterministically.
    sup2 = Supervisor(ServiceConfig(workers=1, queue_capacity=1,
                                    workdir=str(tmp / "bp")))
    sup2.submit(specs[0])
    try:
        sup2.submit(specs[1])
    except BackpressureError as exc:
        if exc.capacity != 1:
            fail(f"backpressure carried wrong capacity: {exc.capacity}")
        print(f"backpressure: typed rejection ({exc})")
    else:
        fail("over-capacity submit was not rejected")

    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
