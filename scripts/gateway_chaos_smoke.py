#!/usr/bin/env python
"""Chaos smoke check for the HTTP/SSE gateway's network-fault contract.

End to end through the real supervisor, worker subprocesses, asyncio
gateway, and the stdlib client — every scenario scripted, no wall-clock
randomness:

1. **Offline reference**: solve the smoke spec directly; every gateway
   answer below must be byte-identical to it.
2. **Dropped connections + a SIGKILLed worker** (in-process gateway):
   the client's SSE connection is torn down mid-stream on a scripted
   schedule (``ChaosPlan.conn_drops``) while the worker child is
   SIGKILLed mid-job; the reconnecting client must still observe one
   monotone, gap-free, duplicate-free incumbent sequence ending in the
   reference answer with a reconciled ledger receipt.
3. **Idempotent resubmission**: re-POSTing the identical spec attaches
   (``replayed``) — the solver must have run exactly once.
4. **Stalled reader** (``ChaosPlan.stalled_readers``): a client that
   stops reading is evicted by the bounded send path instead of
   stalling the service; the eviction is counted.
5. **Gateway SIGKILL mid-stream** (subprocess server): the client
   consumes one event, the gateway process is SIGKILLed, a successor
   is started on the same spool/workdir, and the client's reconnect
   must replay the journal from disk — same sequence contract, same
   byte-identical answer.

Optionally writes the gateway metric registry (JSON + Prometheus text)
under ``--metrics-dir`` for CI artifact upload.  Exits nonzero with a
diagnostic on any deviation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.core import qmkp  # noqa: E402
from repro.graphs import gnm_random_graph, write_edge_list  # noqa: E402
from repro.service import (  # noqa: E402
    ChaosPlan,
    Gateway,
    GatewayClient,
    JobSpec,
    ServiceConfig,
    Supervisor,
)
from repro.service.http import DropConnection  # noqa: E402
from repro.service.jobs import Job  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_sequence(records: list[dict], reference: dict, label: str) -> None:
    """One stream's full event log against the gap/dup/answer contract."""
    ids = [r["id"] for r in records]
    if ids != list(range(1, len(ids) + 1)):
        fail(f"{label}: event ids not monotone/gap-free: {ids}")
    incumbents = [r["data"] for r in records if r["event"] == "incumbent"]
    seen = set()
    for inc in incumbents:
        key = (inc["size"], tuple(inc["vertices"]))
        if key in seen:
            fail(f"{label}: duplicate incumbent {key}")
        seen.add(key)
    sizes = [inc["size"] for inc in incumbents]
    if sizes != sorted(sizes) or len(set(sizes)) != len(sizes):
        fail(f"{label}: incumbent sizes not strictly improving: {sizes}")
    terminal = records[-1]
    if terminal["event"] != "result":
        fail(f"{label}: stream did not end in a result event")
    answer = terminal["data"].get("answer")
    if answer != reference:
        fail(
            f"{label}: answer differs from offline reference:\n"
            f"  reference: {json.dumps(reference, sort_keys=True)}\n"
            f"  gateway:   {json.dumps(answer, sort_keys=True)}"
        )
    if not terminal["data"].get("verified"):
        fail(f"{label}: run ledger did not reconcile")
    receipt = json.loads(Path(terminal["data"]["receipt"]).read_text())
    if not receipt["ledger"]["verified"]:
        fail(f"{label}: receipt ledger did not reconcile")


class ChaosStream:
    """Client-side fault injector driven by ``ChaosPlan.stream_faults``."""

    def __init__(self, faults: dict) -> None:
        self.drop_after = list(faults["drop_after"])
        self.records: list[dict] = []
        self.drops = 0

    def __call__(self, record: dict) -> None:
        if self.drop_after and record["id"] == self.drop_after[0]:
            # The connection dies *while* this event is in flight — the
            # client never commits it, so the reconnect redelivers it.
            self.drop_after.pop(0)
            self.drops += 1
            raise DropConnection
        if record["id"] is not None:
            self.records.append(record)


# ----------------------------------------------------------------------
# Scenarios 2-4: in-process gateway (deterministic worker chaos)
# ----------------------------------------------------------------------
async def in_process_scenarios(tmp: Path, graph: Path, reference: dict):
    chaos = ChaosPlan(
        kills={"victim": [1]},          # worker SIGKILLed after probe 1
        conn_drops={"victim": [1]},     # client drops after event id 1
        stalled_readers={"stall": 2.0},
    )
    config = ServiceConfig(
        workers=1,
        workdir=str(tmp / "work"),
        http_send_queue=16,
        http_write_timeout_s=0.5,
        http_heartbeat_s=0.1,
    )
    spec = JobSpec(str(graph), k=2, seed=7, name="victim")
    async with Supervisor(config, chaos=chaos) as sup:
        gateway = Gateway(sup)
        await gateway.start()
        client = GatewayClient(gateway.base_url, timeout_s=60.0)
        stream = ChaosStream(chaos.stream_faults("victim"))

        _, result = await asyncio.to_thread(client.solve, spec, stream)
        if stream.drops != 1:
            fail(f"expected 1 scripted connection drop, saw {stream.drops}")
        check_sequence(stream.records, reference, "in-process chaos stream")
        victim = sup.jobs[list(sup.jobs)[0]]
        if victim.resumes != 1:
            fail(f"victim resumed {victim.resumes} times, expected 1")
        print(
            f"  drop+worker-kill: {len(stream.records)} events, 1 drop, "
            "1 worker resume, sequence gap/dup-free, answer byte-identical"
        )

        # Scenario 3: identical spec attaches; solver ran exactly once.
        doc = await asyncio.to_thread(client.submit, spec)
        counters = sup.tracer.registry.as_dict()["counters"]
        if not doc["replayed"]:
            fail("identical-spec resubmission was not replayed")
        if counters.get("service_jobs_submitted") != 1:
            fail(
                "identical-spec resubmission double-solved: "
                f"{counters.get('service_jobs_submitted')} submissions"
            )
        print("  idempotent resubmission: attached, solver ran exactly once")

        # Scenario 4: a stalled reader is evicted, not buffered forever.
        faults = chaos.stream_faults("stall")
        key = "feedfacecafebeef"
        journal = gateway._journal(key)
        gateway._jobs[key] = Job("job-stall", spec, sup.workdir)
        sock = socket.create_connection((gateway.host, gateway.port))
        sock.sendall(
            f"GET /v1/jobs/{key}/events HTTP/1.1\r\n"
            f"Host: x\r\nLast-Event-ID: 0\r\n\r\n".encode()
        )
        deadline = time.monotonic() + faults["stall_s"] + 30.0
        pad = "x" * 2048
        n = 0
        try:
            while time.monotonic() < deadline:
                for _ in range(8):
                    journal.append("incumbent", {"n": n, "pad": pad})
                    n += 1
                await asyncio.sleep(0.02)
                counters = sup.tracer.registry.as_dict()["counters"]
                if counters.get("service_slow_client_evictions", 0) >= 1:
                    break
            else:
                fail("stalled reader was never evicted")
        finally:
            sock.close()
        print("  stalled reader: evicted and counted, supervisor unblocked")

        metrics_json = sup.render_metrics("json")
        metrics_prom = sup.render_metrics("prom")
        await gateway.close()
    return metrics_json, metrics_prom


# ----------------------------------------------------------------------
# Scenario 5: gateway SIGKILL mid-stream (subprocess server)
# ----------------------------------------------------------------------
def start_server(spool: Path, cwd: Path) -> tuple[subprocess.Popen, str]:
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(spool),
            "--http", "127.0.0.1:0", "--workers", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=cwd,
    )
    banner = proc.stdout.readline()
    if "gateway listening on " not in banner:
        proc.kill()
        fail(f"server printed no gateway banner: {banner!r}")
    return proc, banner.split("gateway listening on ")[1].strip()


def gateway_kill_scenario(tmp: Path, graph: Path, reference: dict) -> None:
    spool = tmp / "spool"
    spec = JobSpec(str(graph), k=2, seed=7, name="kill-victim")
    chaos = ChaosPlan(gateway_kills={"kill-victim": [1]})
    faults = chaos.stream_faults("kill-victim")
    journal_path = (
        spool / "work" / "gateway-events"
        / f"{spec.content_key()}.events.jsonl"
    )

    proc, url = start_server(spool, tmp)
    records: list[dict] = []
    try:
        client = GatewayClient(url, timeout_s=60.0)
        key = client.submit_with_retries(spec)["job"]
        # Consume exactly up to the scripted kill point, then stop.
        kill_after = faults["kill_after"][0]
        for record in client.stream_once(key, 0):
            if record["id"] is not None:
                records.append(record)
            if record["id"] == kill_after:
                break
        # Determinism: let the job finish journaling on disk, so the
        # SIGKILL provably lands with undelivered events in the journal.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if journal_path.exists() and '"type": "result"' in \
                    journal_path.read_text():
                break
            time.sleep(0.1)
        else:
            fail("journal never reached its terminal record")
    finally:
        proc.kill()  # SIGKILL: no drain, no flush, no goodbye
        proc.wait(timeout=60)

    undelivered = records[-1]["id"] if records else 0
    successor, url2 = start_server(spool, tmp)
    try:
        client = GatewayClient(url2, timeout_s=60.0)
        # The reconnect contract: resume from Last-Event-ID against the
        # successor; the journal on disk must close the gap.
        for record in client.stream_once(spec.content_key(), undelivered):
            if record["id"] is not None:
                records.append(record)
    finally:
        successor.send_signal(signal.SIGINT)
        successor.wait(timeout=60)

    check_sequence(records, reference, "gateway-SIGKILL stream")
    if records[-1]["id"] <= undelivered + 1:
        fail("SIGKILL scenario delivered nothing new after restart")
    print(
        f"  gateway SIGKILL: killed after event {undelivered}, successor "
        f"replayed through event {records[-1]['id']}, answer byte-identical"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--metrics-dir", default=None, metavar="DIR",
        help="write gateway metrics (JSON + Prometheus) here for CI upload",
    )
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="gateway-chaos-"))
    graph = tmp / "graph.txt"
    # gnm(7, 10, seed=1): three qMKP probes, so the worker kill after
    # probe 1 genuinely lands mid-search.
    write_edge_list(gnm_random_graph(7, 10, seed=1), graph)

    # Offline reference: one undisturbed no-gateway solve of the same
    # spec, anchored against the direct in-process qmkp() answer.
    async def offline_solve():
        config = ServiceConfig(workers=1, workdir=str(tmp / "ref"))
        async with Supervisor(config) as sup:
            job = sup.submit(JobSpec(str(graph), k=2, seed=7, name="ref"))
            return await job.result_dict()

    reference = asyncio.run(offline_solve())["answer"]
    direct = qmkp(
        gnm_random_graph(7, 10, seed=1), 2, rng=np.random.default_rng(7)
    )
    if (reference["size"], reference["gate_units"], reference["oracle_calls"]) \
            != (direct.size, direct.gate_units, direct.oracle_calls):
        fail("offline reference disagrees with the direct qmkp() solve")
    print(f"offline reference: {json.dumps(reference, sort_keys=True)}")

    metrics_json, metrics_prom = asyncio.run(
        in_process_scenarios(tmp, graph, reference)
    )
    gateway_kill_scenario(tmp, graph, reference)

    if args.metrics_dir:
        out = Path(args.metrics_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "gateway_metrics.json").write_text(metrics_json)
        (out / "gateway_metrics.prom").write_text(metrics_prom)
        print(f"  metrics written under {out}")

    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
